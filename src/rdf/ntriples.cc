#include "rdf/ntriples.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace shapestats::rdf {

namespace {

// Splits one N-Triples line into subject / predicate / object text,
// respecting quoted literals, and checking the trailing dot.
Status SplitLine(std::string_view line, std::string_view* s, std::string_view* p,
                 std::string_view* o) {
  line = Trim(line);
  if (line.empty() || line.back() != '.') {
    return Status::ParseError("missing terminating '.': " + std::string(line));
  }
  line = Trim(line.substr(0, line.size() - 1));

  // Scan three whitespace-separated tokens; the object may contain spaces
  // inside a quoted literal.
  size_t i = 0;
  auto next_token = [&](std::string_view* out) -> Status {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size()) return Status::ParseError("truncated triple");
    size_t start = i;
    if (line[i] == '"') {
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == '"') {
          ++i;
          break;
        }
        ++i;
      }
      // Consume datatype/lang suffix.
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    } else {
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    }
    *out = line.substr(start, i - start);
    return Status::OK();
  };
  RETURN_NOT_OK(next_token(s));
  RETURN_NOT_OK(next_token(p));
  // Object: the remainder of the line (after trimming) is one term.
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (i >= line.size()) return Status::ParseError("truncated triple");
  *o = Trim(line.substr(i));
  return Status::OK();
}

}  // namespace

Status ParseNTriples(std::string_view text, Graph* graph) {
  if (graph->finalized()) {
    return Status::InvalidArgument("graph already finalized");
  }
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::string_view st, pt, ot;
    Status split = SplitLine(line, &st, &pt, &ot);
    if (!split.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                split.message());
    }
    auto s = ParseTerm(st);
    auto p = ParseTerm(pt);
    auto o = ParseTerm(ot);
    for (const auto* r : {&s, &p, &o}) {
      if (!r->ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  r->status().message());
      }
    }
    if (!p->is_iri()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": predicate must be an IRI");
    }
    if (s->is_literal()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": subject must not be a literal");
    }
    graph->Add(*s, *p, *o);
  }
  return Status::OK();
}

Status LoadNTriplesFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNTriples(buf.str(), graph);
}

std::string WriteNTriples(const Graph& graph) {
  std::string out;
  const auto& dict = graph.dict();
  for (const Triple& t : graph.triples()) {
    out += dict.ToNTriples(t.s);
    out += ' ';
    out += dict.ToNTriples(t.p);
    out += ' ';
    out += dict.ToNTriples(t.o);
    out += " .\n";
  }
  return out;
}

Status SaveNTriplesFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteNTriples(graph);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace shapestats::rdf
