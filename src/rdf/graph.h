// In-memory triple store with sorted-array indexes. This is the substrate
// that stands in for Jena TDB in the paper's setup: it answers triple
// pattern scans for the executor and the analytical counting queries issued
// by the statistics annotator.
//
// Index coverage (component order of the sort key):
//   SPO  — patterns binding S, (S,P), or (S,P,O)
//   POS  — patterns binding P or (P,O)
//   OSP  — patterns binding O or (O,S)
//   PSO  — distinct-subject walks per predicate (annotator, global stats)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shapestats::rdf {

/// One component of a triple pattern: either a bound TermId or a wildcard.
using OptId = std::optional<TermId>;

/// Mutable-until-finalized RDF graph. Usage:
///   Graph g;
///   g.Add(...); ...; g.Finalize();
///   g.Match(s, p, o) / g.CountMatches(...)
/// Owns its TermDictionary.
class Graph {
 public:
  Graph() = default;

  // Movable, not copyable (indexes can be hundreds of MB).
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  TermDictionary& dict() { return dict_; }
  const TermDictionary& dict() const { return dict_; }

  /// Adds a triple by ids. Duplicates are removed at Finalize().
  void Add(TermId s, TermId p, TermId o);

  /// Adds a triple of decoded terms (interns them).
  void Add(const Term& s, const Term& p, const Term& o);

  /// Sorts and deduplicates, builds all indexes. Must be called before any
  /// Match/Count query; Add after Finalize is an error. The SPO sort and the
  /// three secondary index builds run on `pool` (the shared pool when null);
  /// the resulting indexes are identical for every pool size.
  void Finalize(util::ThreadPool* pool = nullptr);

  bool finalized() const { return finalized_; }
  size_t NumTriples() const { return spo_.size(); }

  /// All triples in SPO order.
  std::span<const Triple> triples() const { return spo_; }

  /// All triples in OSP order (objects grouped; distinct-object scans).
  std::span<const Triple> triples_by_object() const { return osp_; }

  /// The distinct predicates of the graph, in ascending id order, read off
  /// the PSO run boundaries in one pass.
  std::vector<TermId> Predicates() const;

  /// Triples matching a pattern, as a contiguous span of one index.
  /// For the (S, ?, O) pattern the result comes from the OSP index with a
  /// two-component prefix, so no post-filtering is ever needed.
  ///
  /// Ordering contract (merge joins depend on it — see src/phys/): the
  /// returned span is always a contiguous run of exactly one index, so it is
  /// sorted by that index's component order. Since the bound positions are
  /// constant across the span, the span is totally ordered by its FREE
  /// positions, most significant first:
  ///
  ///   bound positions   index   span ordered by (free components)
  ///   --------------    -----   --------------------------------
  ///   (none)            SPO     s, p, o
  ///   S                 SPO     p, o
  ///   P                 POS     o, s
  ///   O                 OSP     s, p
  ///   S,P               SPO     o
  ///   S,O               OSP     p
  ///   P,O               POS     s
  ///   S,P,O             SPO     (at most one triple)
  ///
  /// MatchOrder() returns this component sequence programmatically. The
  /// contract holds for empty ranges too: a pattern with no matches yields
  /// an empty span (never an unsorted or non-contiguous view), and the
  /// span's data pointer is valid for pointer arithmetic even then.
  std::span<const Triple> Match(OptId s, OptId p, OptId o) const;

  /// The free-component sort order of the span Match() returns for a given
  /// bound-position signature: a sequence of component indexes
  /// (0 = subject, 1 = predicate, 2 = object), most significant first,
  /// covering exactly the unbound positions. Static — depends only on which
  /// positions are bound, never on their values or the graph contents.
  static std::vector<int> MatchOrder(bool s_bound, bool p_bound, bool o_bound);

  /// Number of triples matching the pattern.
  uint64_t CountMatches(OptId s, OptId p, OptId o) const;

  /// True if the exact triple is present.
  bool Contains(TermId s, TermId p, TermId o) const;

  /// Calls `fn` for every triple matching the pattern.
  void ForEachMatch(OptId s, OptId p, OptId o,
                    const std::function<void(const Triple&)>& fn) const;

  /// Distinct subjects among triples with predicate `p`.
  uint64_t CountDistinctSubjects(TermId p) const;
  /// Distinct objects among triples with predicate `p`.
  uint64_t CountDistinctObjects(TermId p) const;
  /// Distinct subjects / objects over the whole graph.
  uint64_t CountDistinctSubjects() const;
  uint64_t CountDistinctObjects() const;

  /// The PSO index span for predicate `p` (sorted by subject, then object).
  std::span<const Triple> PredicateBySubject(TermId p) const;
  /// The POS index span for predicate `p` (sorted by object, then subject).
  std::span<const Triple> PredicateByObject(TermId p) const;

  /// Approximate heap footprint of the triple indexes in bytes.
  size_t IndexBytes() const;

 private:
  TermDictionary dict_;
  bool finalized_ = false;
  std::vector<Triple> spo_;  // before Finalize: unsorted staging area
  std::vector<Triple> pos_;
  std::vector<Triple> osp_;
  std::vector<Triple> pso_;
};

}  // namespace shapestats::rdf
