// N-Triples reader/writer (line-oriented RDF serialization).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace shapestats::rdf {

/// Parses N-Triples text into `graph` (which must not be finalized).
/// Lines starting with '#' and blank lines are skipped.
Status ParseNTriples(std::string_view text, Graph* graph);

/// Reads an N-Triples file from disk into `graph`.
Status LoadNTriplesFile(const std::string& path, Graph* graph);

/// Serializes a finalized graph as N-Triples (SPO order).
std::string WriteNTriples(const Graph& graph);

/// Writes a finalized graph to a file.
Status SaveNTriplesFile(const Graph& graph, const std::string& path);

}  // namespace shapestats::rdf
