// Turtle-subset reader/writer. Covers the features SHACL shapes files use:
// @prefix, prefixed names, the 'a' keyword, predicate-object lists (';'),
// object lists (','), anonymous blank nodes '[ ... ]' (nested), blank node
// labels, and string/integer/decimal/boolean literals.
//
// Not covered (returns ParseError): collections '( )', multi-line strings,
// relative IRI resolution, @base.
#pragma once

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace shapestats::rdf {

/// Parses Turtle text into `graph` (which must not be finalized).
Status ParseTurtle(std::string_view text, Graph* graph);

/// Reads a Turtle file from disk into `graph`.
Status LoadTurtleFile(const std::string& path, Graph* graph);

}  // namespace shapestats::rdf
