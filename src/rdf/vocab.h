// Well-known IRIs used throughout the system: RDF/RDFS, XSD datatypes,
// SHACL core terms, the paper's statistics extension, and VoID.
#pragma once

#include <string_view>

namespace shapestats::rdf::vocab {

// RDF / RDFS
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";

// XSD datatypes
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";

// SHACL core (https://www.w3.org/TR/shacl/)
inline constexpr std::string_view kShNodeShape =
    "http://www.w3.org/ns/shacl#NodeShape";
inline constexpr std::string_view kShPropertyShape =
    "http://www.w3.org/ns/shacl#PropertyShape";
inline constexpr std::string_view kShTargetClass =
    "http://www.w3.org/ns/shacl#targetClass";
inline constexpr std::string_view kShProperty =
    "http://www.w3.org/ns/shacl#property";
inline constexpr std::string_view kShPath = "http://www.w3.org/ns/shacl#path";
inline constexpr std::string_view kShClass = "http://www.w3.org/ns/shacl#class";
inline constexpr std::string_view kShDatatype =
    "http://www.w3.org/ns/shacl#datatype";
inline constexpr std::string_view kShNodeKind =
    "http://www.w3.org/ns/shacl#nodeKind";
inline constexpr std::string_view kShIri = "http://www.w3.org/ns/shacl#IRI";
inline constexpr std::string_view kShLiteral =
    "http://www.w3.org/ns/shacl#Literal";

// The paper's statistics extension reuses sh:minCount / sh:maxCount and adds
// sh:count / sh:distinctCount (Section 5, Figure 3).
inline constexpr std::string_view kShMinCount =
    "http://www.w3.org/ns/shacl#minCount";
inline constexpr std::string_view kShMaxCount =
    "http://www.w3.org/ns/shacl#maxCount";
inline constexpr std::string_view kShCount = "http://www.w3.org/ns/shacl#count";
inline constexpr std::string_view kShDistinctCount =
    "http://www.w3.org/ns/shacl#distinctCount";

// VoID (global statistics carrier; the paper extends VoID with DSC/DOC).
inline constexpr std::string_view kVoidTriples =
    "http://rdfs.org/ns/void#triples";
inline constexpr std::string_view kVoidProperty =
    "http://rdfs.org/ns/void#property";
inline constexpr std::string_view kVoidDistinctSubjects =
    "http://rdfs.org/ns/void#distinctSubjects";
inline constexpr std::string_view kVoidDistinctObjects =
    "http://rdfs.org/ns/void#distinctObjects";

}  // namespace shapestats::rdf::vocab
