// RDF term model: IRIs, blank nodes, and literals (Definition 3.1 of the
// paper). Terms are parsed once, interned into a TermDictionary, and flow
// through the rest of the system as 32-bit TermIds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace shapestats::rdf {

/// Dense identifier for an interned term. 0 is reserved as invalid.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kLiteral = 2,
};

/// A decoded RDF term. `lexical` holds the IRI string (without angle
/// brackets), the blank node label (without "_:"), or the literal value
/// (unescaped). `datatype`/`lang` are only meaningful for literals.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;
  std::string datatype;  // empty = xsd:string / plain
  std::string lang;      // empty = no language tag

  static Term Iri(std::string iri) {
    return Term{TermKind::kIri, std::move(iri), "", ""};
  }
  static Term Blank(std::string label) {
    return Term{TermKind::kBlank, std::move(label), "", ""};
  }
  static Term Literal(std::string value, std::string datatype = "",
                      std::string lang = "") {
    return Term{TermKind::kLiteral, std::move(value), std::move(datatype),
                std::move(lang)};
  }
  /// Integer literal with xsd:integer datatype.
  static Term IntLiteral(int64_t v);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_literal() const { return kind == TermKind::kLiteral; }

  /// Canonical N-Triples serialization; also the dictionary key.
  std::string ToNTriples() const;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && lang == other.lang;
  }
};

/// Parses one N-Triples term ("<iri>", "_:label", or a literal).
Result<Term> ParseTerm(std::string_view text);

}  // namespace shapestats::rdf
