#include "rdf/turtle.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "rdf/vocab.h"
#include "util/string_util.h"

namespace shapestats::rdf {

namespace {

enum class TokKind {
  kIriRef,      // <...>
  kPName,       // pre:local or :local
  kBlankLabel,  // _:x
  kString,      // "..." (+ suffix handled separately)
  kInteger,
  kDecimal,
  kA,           // keyword 'a'
  kBool,        // true / false
  kPrefixDecl,  // @prefix
  kDot,
  kSemicolon,
  kComma,
  kLBracket,
  kRBracket,
  kLangTag,     // @en
  kDTypeMark,   // ^^
  kEof,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    SkipWsAndComments();
    if (pos_ >= text_.size()) return Token{TokKind::kEof, "", line_};
    char c = text_[pos_];
    if (c == '.') return Simple(TokKind::kDot);
    if (c == ';') return Simple(TokKind::kSemicolon);
    if (c == ',') return Simple(TokKind::kComma);
    if (c == '[') return Simple(TokKind::kLBracket);
    if (c == ']') return Simple(TokKind::kRBracket);
    if (c == '<') return LexIri();
    if (c == '"') return LexString();
    if (c == '^') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '^') {
        pos_ += 2;
        return Token{TokKind::kDTypeMark, "^^", line_};
      }
      return Err("stray '^'");
    }
    if (c == '@') return LexAtKeyword();
    if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber();
    }
    return LexName();
  }

 private:
  Token Simple(TokKind kind) {
    Token t{kind, std::string(1, text_[pos_]), line_};
    ++pos_;
    return t;
  }

  Status Err(const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  void SkipWsAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> LexIri() {
    size_t end = text_.find('>', pos_ + 1);
    if (end == std::string_view::npos) return Err("unterminated IRI");
    Token t{TokKind::kIriRef, std::string(text_.substr(pos_ + 1, end - pos_ - 1)),
            line_};
    pos_ = end + 1;
    return t;
  }

  Result<Token> LexString() {
    size_t i = pos_ + 1;
    std::string raw;
    while (i < text_.size()) {
      if (text_[i] == '\\' && i + 1 < text_.size()) {
        raw += text_[i];
        raw += text_[i + 1];
        i += 2;
        continue;
      }
      if (text_[i] == '"') break;
      if (text_[i] == '\n') ++line_;
      raw += text_[i];
      ++i;
    }
    if (i >= text_.size()) return Err("unterminated string literal");
    pos_ = i + 1;
    return Token{TokKind::kString, UnescapeLiteral(raw), line_};
  }

  Result<Token> LexAtKeyword() {
    size_t i = pos_ + 1;
    size_t start = i;
    while (i < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[i])) || text_[i] == '-')) {
      ++i;
    }
    std::string word(text_.substr(start, i - start));
    pos_ = i;
    if (word == "prefix") return Token{TokKind::kPrefixDecl, word, line_};
    return Token{TokKind::kLangTag, word, line_};
  }

  Result<Token> LexNumber() {
    size_t i = pos_;
    if (text_[i] == '+' || text_[i] == '-') ++i;
    bool decimal = false;
    while (i < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[i])) || text_[i] == '.')) {
      if (text_[i] == '.') {
        // A dot followed by a non-digit terminates the statement instead.
        if (i + 1 >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[i + 1]))) {
          break;
        }
        decimal = true;
      }
      ++i;
    }
    Token t{decimal ? TokKind::kDecimal : TokKind::kInteger,
            std::string(text_.substr(pos_, i - pos_)), line_};
    pos_ = i;
    return t;
  }

  Result<Token> LexName() {
    size_t i = pos_;
    auto name_char = [&](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
             c == ':' || c == '.' || c == '%';
    };
    while (i < text_.size() && name_char(text_[i])) ++i;
    // A trailing '.' belongs to the statement terminator, not the name.
    size_t end = i;
    while (end > pos_ && text_[end - 1] == '.') --end;
    std::string word(text_.substr(pos_, end - pos_));
    if (word.empty()) return Err(std::string("unexpected character '") + text_[pos_] + "'");
    pos_ = end;
    if (word == "a") return Token{TokKind::kA, word, line_};
    if (word == "true" || word == "false") return Token{TokKind::kBool, word, line_};
    if (StartsWith(word, "_:")) {
      return Token{TokKind::kBlankLabel, word.substr(2), line_};
    }
    if (word.find(':') == std::string::npos) {
      return Err("bare word '" + word + "' is not valid Turtle");
    }
    return Token{TokKind::kPName, word, line_};
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

class TurtleParser {
 public:
  TurtleParser(std::string_view text, Graph* graph)
      : lexer_(text), graph_(graph) {}

  Status Run() {
    RETURN_NOT_OK(Advance());
    while (tok_.kind != TokKind::kEof) {
      if (tok_.kind == TokKind::kPrefixDecl) {
        RETURN_NOT_OK(ParsePrefix());
      } else {
        RETURN_NOT_OK(ParseStatement());
      }
    }
    return Status::OK();
  }

 private:
  Status Advance() {
    ASSIGN_OR_RETURN(tok_, lexer_.Next());
    return Status::OK();
  }

  Status Expect(TokKind kind, const char* what) {
    if (tok_.kind != kind) {
      return Status::ParseError("line " + std::to_string(tok_.line) +
                                ": expected " + what + ", got '" + tok_.text + "'");
    }
    return Advance();
  }

  Status ParsePrefix() {
    RETURN_NOT_OK(Advance());  // consume @prefix
    if (tok_.kind != TokKind::kPName) {
      return Status::ParseError("line " + std::to_string(tok_.line) +
                                ": expected prefix name");
    }
    std::string pname = tok_.text;
    if (pname.empty() || pname.back() != ':') {
      return Status::ParseError("prefix must end with ':': " + pname);
    }
    RETURN_NOT_OK(Advance());
    if (tok_.kind != TokKind::kIriRef) {
      return Status::ParseError("expected IRI in @prefix");
    }
    prefixes_[pname.substr(0, pname.size() - 1)] = tok_.text;
    RETURN_NOT_OK(Advance());
    return Expect(TokKind::kDot, "'.'");
  }

  Result<Term> ExpandPName(const Token& tok) {
    size_t colon = tok.text.find(':');
    std::string prefix = tok.text.substr(0, colon);
    std::string local = tok.text.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("line " + std::to_string(tok.line) +
                                ": undeclared prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  // Parses a subject or object term. May recurse into '[ ... ]'.
  Result<TermId> ParseNode(bool as_subject) {
    switch (tok_.kind) {
      case TokKind::kIriRef: {
        TermId id = graph_->dict().InternIri(tok_.text);
        RETURN_NOT_OK(Advance());
        return id;
      }
      case TokKind::kPName: {
        ASSIGN_OR_RETURN(Term t, ExpandPName(tok_));
        RETURN_NOT_OK(Advance());
        return graph_->dict().Intern(t);
      }
      case TokKind::kBlankLabel: {
        TermId id = graph_->dict().Intern(Term::Blank(tok_.text));
        RETURN_NOT_OK(Advance());
        return id;
      }
      case TokKind::kLBracket: {
        RETURN_NOT_OK(Advance());
        TermId id = graph_->dict().Intern(
            Term::Blank("anon" + std::to_string(anon_counter_++)));
        if (tok_.kind != TokKind::kRBracket) {
          RETURN_NOT_OK(ParsePredicateObjectList(id));
        }
        RETURN_NOT_OK(Expect(TokKind::kRBracket, "']'"));
        return id;
      }
      case TokKind::kString: {
        std::string value = tok_.text;
        RETURN_NOT_OK(Advance());
        if (tok_.kind == TokKind::kLangTag) {
          std::string lang = tok_.text;
          RETURN_NOT_OK(Advance());
          return graph_->dict().Intern(Term::Literal(value, "", lang));
        }
        if (tok_.kind == TokKind::kDTypeMark) {
          RETURN_NOT_OK(Advance());
          Term dt;
          if (tok_.kind == TokKind::kIriRef) {
            dt = Term::Iri(tok_.text);
          } else if (tok_.kind == TokKind::kPName) {
            ASSIGN_OR_RETURN(dt, ExpandPName(tok_));
          } else {
            return Status::ParseError("expected datatype IRI after ^^");
          }
          RETURN_NOT_OK(Advance());
          return graph_->dict().Intern(Term::Literal(value, dt.lexical));
        }
        return graph_->dict().Intern(Term::Literal(value));
      }
      case TokKind::kInteger: {
        TermId id = graph_->dict().Intern(
            Term::Literal(tok_.text, std::string(vocab::kXsdInteger)));
        RETURN_NOT_OK(Advance());
        return id;
      }
      case TokKind::kDecimal: {
        TermId id = graph_->dict().Intern(Term::Literal(
            tok_.text, "http://www.w3.org/2001/XMLSchema#decimal"));
        RETURN_NOT_OK(Advance());
        return id;
      }
      case TokKind::kBool: {
        TermId id = graph_->dict().Intern(Term::Literal(
            tok_.text, "http://www.w3.org/2001/XMLSchema#boolean"));
        RETURN_NOT_OK(Advance());
        return id;
      }
      default:
        return Status::ParseError("line " + std::to_string(tok_.line) + ": bad " +
                                  (as_subject ? "subject" : "object") + " token '" +
                                  tok_.text + "'");
    }
  }

  Result<TermId> ParsePredicate() {
    if (tok_.kind == TokKind::kA) {
      RETURN_NOT_OK(Advance());
      return graph_->dict().InternIri(vocab::kRdfType);
    }
    if (tok_.kind == TokKind::kIriRef) {
      TermId id = graph_->dict().InternIri(tok_.text);
      RETURN_NOT_OK(Advance());
      return id;
    }
    if (tok_.kind == TokKind::kPName) {
      ASSIGN_OR_RETURN(Term t, ExpandPName(tok_));
      RETURN_NOT_OK(Advance());
      return graph_->dict().Intern(t);
    }
    return Status::ParseError("line " + std::to_string(tok_.line) +
                              ": expected predicate, got '" + tok_.text + "'");
  }

  Status ParsePredicateObjectList(TermId subject) {
    while (true) {
      ASSIGN_OR_RETURN(TermId pred, ParsePredicate());
      // Object list.
      while (true) {
        ASSIGN_OR_RETURN(TermId obj, ParseNode(/*as_subject=*/false));
        graph_->Add(subject, pred, obj);
        if (tok_.kind == TokKind::kComma) {
          RETURN_NOT_OK(Advance());
          continue;
        }
        break;
      }
      if (tok_.kind == TokKind::kSemicolon) {
        RETURN_NOT_OK(Advance());
        // Allow dangling ';' before '.' or ']'.
        if (tok_.kind == TokKind::kDot || tok_.kind == TokKind::kRBracket) break;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseStatement() {
    bool bracketed_subject = tok_.kind == TokKind::kLBracket;
    ASSIGN_OR_RETURN(TermId subject, ParseNode(/*as_subject=*/true));
    // "[ ... ] ." is a complete statement: the predicate-object list lives
    // inside the brackets.
    if (bracketed_subject && tok_.kind == TokKind::kDot) return Advance();
    RETURN_NOT_OK(ParsePredicateObjectList(subject));
    return Expect(TokKind::kDot, "'.'");
  }

  Lexer lexer_;
  Graph* graph_;
  Token tok_{TokKind::kEof, "", 0};
  std::unordered_map<std::string, std::string> prefixes_;
  uint64_t anon_counter_ = 0;
};

}  // namespace

Status ParseTurtle(std::string_view text, Graph* graph) {
  if (graph->finalized()) {
    return Status::InvalidArgument("graph already finalized");
  }
  return TurtleParser(text, graph).Run();
}

Status LoadTurtleFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTurtle(buf.str(), graph);
}

}  // namespace shapestats::rdf
