#include "opt/join_order.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "sparql/query_graph.h"

namespace shapestats::opt {

using card::TpEstimate;
using sparql::EncodedBgp;

Plan PlanJoinOrder(const EncodedBgp& bgp,
                   const card::PlannerStatsProvider& provider,
                   obs::PlannerTrace* trace) {
  static obs::Counter* plans_counter =
      obs::MetricsRegistry::Global().GetCounter("opt.plans");
  static obs::Counter* cartesian_counter =
      obs::MetricsRegistry::Global().GetCounter("opt.cartesian_fallbacks");
  plans_counter->Add();
  Plan plan;
  plan.provider = provider.name();
  const size_t n = bgp.patterns.size();
  if (n == 0) return plan;

  plan.tp_estimates = provider.EstimateAll(bgp);
  std::vector<card::TpEstimate> seed = provider.SeedEstimates(bgp);

  // Line 6: sort ascending by the *seed* cardinalities — for the SS
  // provider these are the phase-1 global estimates (shape-refined
  // estimates are conditional on their rdf:type anchor and only valid for
  // join steps). Stable sort: ties keep the textual pattern order. The
  // sorted order picks the first pattern and breaks ties among equal join
  // estimates.
  std::vector<uint32_t> by_card(n);
  std::iota(by_card.begin(), by_card.end(), 0);
  std::stable_sort(by_card.begin(), by_card.end(), [&](uint32_t a, uint32_t b) {
    return seed[a].card < seed[b].card;
  });

  std::vector<bool> used(n, false);
  uint32_t first = by_card[0];
  used[first] = true;
  plan.order.push_back(first);
  plan.step_estimates.push_back(plan.tp_estimates[first].card);
  plan.total_cost = plan.tp_estimates[first].card;

  for (size_t step = 1; step < n; ++step) {
    double best_cost = std::numeric_limits<double>::infinity();
    bool best_joinable = false;
    uint32_t best_b = 0;
    // Prefer joinable pairs over Cartesian products even when the Cartesian
    // estimate is numerically smaller (e.g. with zero-cardinality patterns):
    // executing a connected pattern first never hurts and avoids blow-ups
    // from misestimated zero counts.
    for (uint32_t b : by_card) {
      if (used[b]) continue;
      if (trace != nullptr) ++trace->candidates_considered;
      double c = std::numeric_limits<double>::infinity();
      bool joinable = false;
      for (uint32_t a : plan.order) {
        if (!sparql::Joinable(bgp.patterns[a], bgp.patterns[b])) continue;
        joinable = true;
        if (trace != nullptr) ++trace->join_estimates;
        c = std::min(c, provider.EstimateJoin(bgp.patterns[a], plan.tp_estimates[a],
                                              bgp.patterns[b],
                                              plan.tp_estimates[b]));
      }
      if (!joinable) {
        // Cartesian product estimate against the cheapest processed pattern.
        double min_card = std::numeric_limits<double>::infinity();
        for (uint32_t a : plan.order) {
          min_card = std::min(min_card, plan.tp_estimates[a].card);
        }
        c = min_card * plan.tp_estimates[b].card;
      }
      if ((joinable && !best_joinable) ||
          (joinable == best_joinable && c < best_cost)) {
        best_cost = c;
        best_b = b;
        best_joinable = joinable;
      }
    }
    if (!best_joinable) {
      plan.has_cartesian = true;
      cartesian_counter->Add();
      if (trace != nullptr) ++trace->cartesian_steps;
    }
    used[best_b] = true;
    plan.order.push_back(best_b);
    plan.step_estimates.push_back(best_cost);
    plan.total_cost += best_cost;
  }
  return plan;
}

}  // namespace shapestats::opt
