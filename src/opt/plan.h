// Query plan representation: a join order over the BGP's triple patterns
// (Definition 4.1) with the estimates that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "card/provider.h"
#include "sparql/encoded_bgp.h"

namespace shapestats::opt {

/// A left-deep join order. `order[k]` is the index (into
/// EncodedBgp::patterns) of the pattern joined at step k.
struct Plan {
  std::vector<uint32_t> order;

  /// Estimates per step: step_estimates[0] is the first pattern's estimated
  /// cardinality; step_estimates[k] (k >= 1) is the estimated join
  /// cardinality when pattern order[k] is added (the EZ Card column of
  /// Table 2).
  std::vector<double> step_estimates;

  /// Per-pattern TP estimates as computed by the provider (the E_TP column).
  std::vector<card::TpEstimate> tp_estimates;

  /// Sum of step_estimates — the paper's plan cost (Problem 2: "obtained by
  /// summing up the intermediate cardinalities of each join operation").
  double total_cost = 0;

  /// Label of the statistics provider that produced the plan.
  std::string provider;

  /// Feedback-learned adjustment factors (per pattern, parallel to
  /// tp_estimates) that were in force when this plan was built; empty or
  /// all-1.0 when estimation ran uncorrected. Stamped by the engine's plan
  /// cache, surfaced by EXPLAIN as "est: corrected".
  std::vector<double> correction_factors;

  /// True if some step was a Cartesian product.
  bool has_cartesian = false;
};

}  // namespace shapestats::opt
