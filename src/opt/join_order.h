// Algorithm 1 (join ordering): greedy construction of a join order from
// per-pattern cardinality estimates and the pairwise join estimator of the
// statistics provider.
//
// Faithfulness note: the paper's pseudocode initializes the local bound
// with the running cost (line 11), which can leave an iteration without a
// selected pattern. We implement the textual description instead — "the
// algorithm iterates over all the triple patterns and chooses a triple
// pattern with the least estimated join cardinality given the triples
// already selected" — i.e. an unconditional arg-min over the remaining
// patterns, with Cartesian products as the fallback when nothing joins.
#pragma once

#include "card/provider.h"
#include "obs/trace.h"
#include "opt/plan.h"
#include "sparql/encoded_bgp.h"

namespace shapestats::opt {

/// Computes a join order for `bgp` using `provider`'s estimates.
/// Complexity O(n^3) in the number of triple patterns, as in the paper.
/// When `trace` is non-null, records candidate patterns considered, join
/// estimates evaluated, and Cartesian fallback events; the global metrics
/// registry counts plans and Cartesian fallbacks either way.
Plan PlanJoinOrder(const sparql::EncodedBgp& bgp,
                   const card::PlannerStatsProvider& provider,
                   obs::PlannerTrace* trace = nullptr);

}  // namespace shapestats::opt
