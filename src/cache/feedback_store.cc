#include "cache/feedback_store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace shapestats::cache {

size_t FeedbackStore::Record(uint64_t template_hash,
                             const std::vector<Sample>& samples) {
  size_t published = 0;
  util::MutexLock lock(mu_);
  for (const Sample& s : samples) {
    if (!(s.ratio > 0) || !std::isfinite(s.ratio)) continue;
    Entry& e = entries_[Key{template_hash, s.canon_pattern}];
    e.n += 1;
    e.sum_log += std::log(s.ratio);
    // Re-publications need exponentially more fresh evidence than the
    // first one (capped at 1024x) so a template whose two candidate plans
    // keep trading places settles instead of thrashing the cache.
    const uint64_t needed =
        static_cast<uint64_t>(opts_.min_observations)
        << std::min<uint32_t>(e.publish_count, 10);
    if (e.n < needed) continue;
    double candidate = std::exp(e.sum_log / static_cast<double>(e.n));
    candidate = std::clamp(candidate, 1.0 / opts_.max_factor, opts_.max_factor);
    const double drift = candidate > e.published ? candidate / e.published
                                                 : e.published / candidate;
    if (drift < opts_.invalidate_ratio) continue;
    e.published = candidate;
    e.has_published = true;
    e.publish_count += 1;
    // The new factor may change the plan, making ratios observed under the
    // old plan meaningless for the new one: start the evidence over.
    e.n = 0;
    e.sum_log = 0;
    versions_[template_hash] += 1;
    published_ += 1;
    ++published;
  }
  return published;
}

double FeedbackStore::Factor(uint64_t template_hash,
                             uint32_t canon_pattern) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(Key{template_hash, canon_pattern});
  return it == entries_.end() ? 1.0 : it->second.published;
}

std::vector<double> FeedbackStore::Factors(uint64_t template_hash,
                                           size_t num_patterns) const {
  std::vector<double> factors(num_patterns, 1.0);
  util::MutexLock lock(mu_);
  for (size_t i = 0; i < num_patterns; ++i) {
    auto it = entries_.find(Key{template_hash, static_cast<uint32_t>(i)});
    if (it != entries_.end()) factors[i] = it->second.published;
  }
  return factors;
}

uint64_t FeedbackStore::Version(uint64_t template_hash) const {
  util::MutexLock lock(mu_);
  auto it = versions_.find(template_hash);
  return it == versions_.end() ? 0 : it->second;
}

size_t FeedbackStore::NumEntries() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

uint64_t FeedbackStore::NumPublished() const {
  util::MutexLock lock(mu_);
  return published_;
}

std::string FeedbackStore::ToTable() const {
  // Sorted copy so the dump is deterministic.
  std::map<std::pair<uint64_t, uint32_t>, Entry> sorted;
  {
    util::MutexLock lock(mu_);
    for (const auto& [k, e] : entries_) sorted[{k.tmpl, k.pattern}] = e;
  }
  std::string out =
      "template          pattern  obs  geo-mean  factor\n";
  char line[128];
  for (const auto& [k, e] : sorted) {
    const double geo =
        e.n == 0 ? e.published
                 : std::exp(e.sum_log / static_cast<double>(e.n));
    std::snprintf(line, sizeof(line),
                  "t:%016llx  tp%-5u  %-4llu %-9.3g %.3g%s\n",
                  static_cast<unsigned long long>(k.first), k.second,
                  static_cast<unsigned long long>(e.n), geo, e.published,
                  e.has_published ? "" : " (pending)");
    out += line;
  }
  if (sorted.empty()) out += "(no observations)\n";
  return out;
}

}  // namespace shapestats::cache
