// BGP template canonicalization: the cache key of the plan cache.
//
// Two queries share a template when they are identical up to (a) variable
// renaming, (b) triple-pattern order, and (c) the *values* of parameterized
// constants. The canonical form alpha-renames variables, sorts patterns
// into a structure-determined order (WL-style color refinement over the
// query's variable/constant incidence graph), and replaces parameterizable
// constants with placeholder ids that preserve equality classes (two
// occurrences of the same constant share a placeholder; distinct constants
// get distinct placeholders).
//
// What stays concrete — and why the key is sound for plan reuse:
//
//   * predicate constants        Table-1 estimates read per-predicate
//                                statistics (cnt/DSC/DOC);
//   * rdf:type object constants  class counts and shape anchors are read
//                                from the class term;
//   * FILTER constants           the static checker's filter-contradiction
//                                rule and filter evaluation are
//                                value-sensitive;
//
// every other bound subject/object only selects *which* rows match, never
// which statistics feed the estimate (card::CardinalityEstimator's Table-1
// formulas are value-independent given the bound-position structure), so
// two instances of one template provably receive the same join order,
// operator assignment, and satisfiability verdict. Queries containing
// constants absent from the dictionary (kMissing terms) are not cacheable:
// their estimates collapse to zero and the static checker short-circuits
// them anyway.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/encoded_bgp.h"
#include "sparql/query.h"

namespace shapestats::cache {

/// Canonical form of one query plus the maps that carry cached plans back
/// into instance space.
struct CanonicalTemplate {
  /// False when the query must bypass the cache (empty BGP, missing
  /// constants); `bypass_reason` says why.
  bool cacheable = false;
  std::string bypass_reason;

  /// Canonical text form — the cache key. Readable for debugging; hashed
  /// for metrics/events.
  std::string key;
  /// FNV-1a of `key` (the template id reported in EXPLAIN and events).
  uint64_t hash = 0;

  /// canonical pattern position -> index into the instance BGP's patterns.
  std::vector<uint32_t> canon_to_instance;
  /// instance pattern index -> canonical position (inverse of the above).
  std::vector<uint32_t> instance_to_canon;
  /// canonical var id -> instance VarId.
  std::vector<sparql::VarId> var_canon_to_instance;
  /// instance VarId -> canonical var id.
  std::vector<sparql::VarId> var_instance_to_canon;
  /// Number of parameter placeholders (distinct parameterized constants).
  uint32_t num_params = 0;

  /// Short hex id for logs/EXPLAIN ("t:a1b2c3d4e5f67890").
  std::string ShortId() const;
};

/// Canonicalizes `query`/`bgp` (the encoding of `query`). `rdf_type_id` is
/// GlobalStats::rdf_type_id (kInvalidTermId when the data has no rdf:type
/// triples); objects of that predicate stay concrete in the key.
CanonicalTemplate CanonicalizeTemplate(const sparql::ParsedQuery& query,
                                       const sparql::EncodedBgp& bgp,
                                       rdf::TermId rdf_type_id);

}  // namespace shapestats::cache
