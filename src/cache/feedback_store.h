// Feedback store: folds observed per-step cardinality truths back into
// estimation. For each (template, canonical pattern) the store accumulates
// observed/estimated ratios — always expressed against the *uncorrected*
// estimate, so samples taken under an already-applied correction compose
// instead of oscillating — and publishes a learned adjustment factor once
// enough observations agree (geometric mean over a confidence floor).
//
// Publication is deliberately sticky: a factor only moves when the
// candidate differs from the published value by `invalidate_ratio` or
// more. Every publication bumps the template's feedback version, which the
// plan cache compares on lookup to force a re-plan under the corrected
// estimates (the adjustment may flip the join order or operator choice).
//
// A publication also resets the entry's accumulator: a changed factor can
// change the plan, and per-step ratios observed under the old plan do not
// describe the new one, so each published regime starts its evidence from
// scratch. Re-publications additionally back off exponentially (the k-th
// needs min_observations * 2^k fresh samples, capped), which bounds the
// invalidation rate even if two plans keep trading places.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"

namespace shapestats::cache {

class FeedbackStore {
 public:
  struct Options {
    /// Observations per (template, pattern) before a factor may publish.
    uint32_t min_observations = 3;
    /// Published factors are clamped to [1/max_factor, max_factor].
    double max_factor = 1024.0;
    /// Publish only when candidate/published (or its inverse) reaches this.
    double invalidate_ratio = 1.25;
  };

  FeedbackStore() = default;
  explicit FeedbackStore(Options opts) : opts_(opts) {}

  /// One observation: the canonical pattern blamed and the total
  /// observed/estimated ratio relative to the *uncorrected* estimate.
  struct Sample {
    uint32_t canon_pattern = 0;
    double ratio = 1.0;
  };

  /// Folds one executed query's samples in. Returns the number of factors
  /// (re)published — each publication bumped the template's version.
  size_t Record(uint64_t template_hash, const std::vector<Sample>& samples);

  /// Published factor for one canonical pattern (1.0 until confident).
  double Factor(uint64_t template_hash, uint32_t canon_pattern) const;

  /// Published factors for canonical patterns [0, num_patterns).
  std::vector<double> Factors(uint64_t template_hash,
                              size_t num_patterns) const;

  /// Monotone per-template version; bumped on every publication. A cached
  /// plan built at version v is stale once Version() > v.
  uint64_t Version(uint64_t template_hash) const;

  /// Number of (template, pattern) entries with at least one observation.
  size_t NumEntries() const;
  /// Total factors ever published (including re-publications).
  uint64_t NumPublished() const;

  /// Human-readable dump for the shell (.cache): one line per entry with
  /// observations, geometric-mean ratio, and the published factor.
  std::string ToTable() const;

 private:
  struct Entry {
    uint64_t n = 0;           // observations since the last publication
    double sum_log = 0;       // sum of log(observed ratio) since then
    double published = 1.0;   // factor currently in force
    bool has_published = false;
    uint32_t publish_count = 0;  // drives the re-publication backoff
  };
  struct Key {
    uint64_t tmpl;
    uint32_t pattern;
    bool operator==(const Key& o) const {
      return tmpl == o.tmpl && pattern == o.pattern;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.tmpl ^ (0x9e3779b97f4a7c15ull * (k.pattern + 1));
      h ^= h >> 33;
      return static_cast<size_t>(h * 0xff51afd7ed558ccdull);
    }
  };

  Options opts_;
  mutable util::Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_ SHAPESTATS_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, uint64_t> versions_ SHAPESTATS_GUARDED_BY(mu_);
  uint64_t published_ SHAPESTATS_GUARDED_BY(mu_) = 0;
};

}  // namespace shapestats::cache
