// PlanCache: template-keyed cache of everything about a query that does
// not depend on its parameterized constant values — the optimized logical
// plan, the physical operator assignment (before the engine's per-instance
// ASK/LIMIT pipelining downgrade), and the static checker's verdict plus
// inferred class anchors. A hit skips static-check + optimize + physical
// planning entirely: the engine translates the canonical-space plan back
// into the instance's pattern/variable numbering and goes straight to
// execution.
//
// Entries are validated on every lookup against (a) the cache's stats
// epoch (bumped by InvalidateAll when statistics change) and (b) the
// owned FeedbackStore's per-template version: a published estimate
// correction bumps the version, so the next lookup of that template
// misses, re-plans under the corrected estimates — possibly flipping the
// join order or an operator — and re-inserts. Eviction is LRU with a
// fixed capacity.
//
// Thread safety: all public methods are safe for concurrent use
// (ExecuteBatch runs queries on a pool); entries are immutable once
// inserted and handed out as shared_ptr<const>.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/shape_check.h"
#include "cache/feedback_store.h"
#include "cache/template_key.h"
#include "opt/plan.h"
#include "phys/physical_plan.h"
#include "util/thread_annotations.h"

namespace shapestats::obs {
class Counter;
class Gauge;
}  // namespace shapestats::obs

namespace shapestats::cache {

/// One cached template. Plans and anchors live in *canonical* space:
/// pattern indices are canonical positions and join variables are
/// canonical var ids; PlanToInstance / PhysToInstance translate them back
/// through a CanonicalTemplate's maps.
struct CachedPlan {
  uint64_t template_hash = 0;
  std::string short_id;
  uint32_t num_patterns = 0;

  /// Static-check verdict (valid template-wide; every emptiness rule is
  /// value-independent given the key's constant-distinctness classes).
  bool checked = false;
  analysis::Satisfiability verdict = analysis::Satisfiability::kSatisfiable;
  std::string rule;
  /// The query has error-severity lint findings (degenerate projection /
  /// filter / order variables): never short-circuit, match uncached
  /// behavior exactly.
  bool lint_errors = false;
  /// Inferred class anchors: canonical var id -> class term.
  std::vector<std::pair<uint32_t, rdf::TermId>> inferred;

  /// Logical plan in canonical space (empty when the entry short-circuits).
  opt::Plan plan;
  /// Physical plan in canonical space, *before* any ASK/LIMIT downgrade.
  phys::PhysicalPlan phys;
  /// Correction factors (per canonical pattern) in force when the plan was
  /// built — needed to express later observations against the uncorrected
  /// estimate, and surfaced by EXPLAIN as "est: corrected".
  std::vector<double> corrections;
  /// FeedbackStore::Version at plan time; a newer version invalidates.
  uint64_t feedback_version = 0;
  /// PlanCache::stats_epoch at plan time.
  uint64_t stats_epoch = 0;
};

class PlanCache {
 public:
  struct Options {
    /// Maximum number of cached templates before LRU eviction.
    size_t capacity = 256;
    /// When false the cache serves plans but records no feedback: no
    /// learned corrections, no feedback-driven invalidations. For
    /// deployments that want repeatable plans, and for benchmarking the
    /// pure hit path.
    bool learn = true;
    FeedbackStore::Options feedback;
  };

  struct StatsSnapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    uint64_t bypasses = 0;
    uint64_t corrections = 0;
    size_t size = 0;
    size_t capacity = 0;
    /// hits / (hits + misses), 0 when no lookups happened.
    double hit_rate = 0;
  };

  PlanCache();
  explicit PlanCache(Options opts);

  /// Looks up a canonical key, counting a hit or miss. A stale entry
  /// (stats epoch or feedback version behind) is erased and counted as an
  /// invalidation + miss.
  std::shared_ptr<const CachedPlan> Get(const std::string& key);

  /// Lookup without touching LRU order or hit/miss counters, but with the
  /// same staleness rules (a stale entry reads as absent). For EXPLAIN.
  std::shared_ptr<const CachedPlan> Peek(const std::string& key) const;

  /// Inserts (or replaces) an entry, evicting the least-recently-used
  /// entry beyond capacity. Stamps the entry's stats_epoch.
  void Put(const std::string& key, std::shared_ptr<CachedPlan> entry);

  /// Counts a query that could not be cached (empty BGP, missing
  /// constants).
  void NoteBypass();

  /// Folds observed/estimated ratios for one template into the feedback
  /// store; publications bump the template version (invalidating its
  /// entry on next lookup) and the cache.corrections counter.
  /// Returns the number of factors published; a no-op returning 0 when
  /// Options::learn is false.
  size_t RecordFeedback(uint64_t template_hash,
                        const std::vector<FeedbackStore::Sample>& samples);

  /// Drops every entry by bumping the stats epoch (entries are erased
  /// lazily on lookup) and clearing the map eagerly.
  void InvalidateAll();

  uint64_t stats_epoch() const;
  size_t size() const;
  StatsSnapshot stats() const;

  FeedbackStore& feedback() { return feedback_; }
  const FeedbackStore& feedback() const { return feedback_; }

 private:
  /// True when `entry` is stale under the current epoch/feedback version.
  bool Stale(const CachedPlan& entry) const;
  void PublishGauges(size_t size, uint64_t hits, uint64_t misses) const;

  Options opts_;
  FeedbackStore feedback_;

  mutable util::Mutex mu_;
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CachedPlan>>>;
  LruList lru_ SHAPESTATS_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_
      SHAPESTATS_GUARDED_BY(mu_);
  uint64_t epoch_ SHAPESTATS_GUARDED_BY(mu_) = 1;
  uint64_t hits_ SHAPESTATS_GUARDED_BY(mu_) = 0;
  uint64_t misses_ SHAPESTATS_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ SHAPESTATS_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ SHAPESTATS_GUARDED_BY(mu_) = 0;
  uint64_t bypasses_ SHAPESTATS_GUARDED_BY(mu_) = 0;
  uint64_t corrections_ SHAPESTATS_GUARDED_BY(mu_) = 0;

  // Global-registry instruments, resolved once.
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_evictions_;
  obs::Counter* m_invalidations_;
  obs::Counter* m_bypasses_;
  obs::Counter* m_corrections_;
  obs::Gauge* m_size_;
  obs::Gauge* m_hit_rate_pct_;
};

/// Canonical <-> instance plan translation through a template's maps.
/// Pattern-indexed vectors (tp_estimates, correction_factors) and the
/// join order are permuted; step-indexed data is order-invariant.
opt::Plan PlanToCanonical(const opt::Plan& plan, const CanonicalTemplate& t);
opt::Plan PlanToInstance(const opt::Plan& plan, const CanonicalTemplate& t);
phys::PhysicalPlan PhysToCanonical(const phys::PhysicalPlan& plan,
                                   const CanonicalTemplate& t);
phys::PhysicalPlan PhysToInstance(const phys::PhysicalPlan& plan,
                                  const CanonicalTemplate& t);

}  // namespace shapestats::cache
