#include "cache/template_key.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <numeric>

namespace shapestats::cache {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixByte(uint64_t h, uint8_t b) { return (h ^ b) * kFnvPrime; }

/// splitmix64 finalizer: cheap, well-distributed 64-bit mixer for the
/// internal refinement colors (the published template hash stays FNV-1a
/// of the key string).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-sensitive combine (Mix(Mix(h,a),b) != Mix(Mix(h,b),a)).
uint64_t Mix(uint64_t h, uint64_t v) { return Mix64(h ^ Mix64(v)); }

uint64_t HashBytes(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : s) h = MixByte(h, c);
  return h;
}

/// How one pattern slot enters the canonical form.
enum class SlotClass : uint8_t {
  kVar,       // alpha-renamed variable
  kConcrete,  // constant kept verbatim (predicate / rdf:type object)
  kParam,     // constant parameterized out (identity class only)
};

struct Slot {
  SlotClass cls = SlotClass::kVar;
  uint32_t node = 0;      // var id (kVar) or param class (kParam)
  uint64_t concrete = 0;  // term id (kConcrete)
};

/// Per-thread working set reused across calls: canonicalization sits on the
/// cache-hit fast path, so the dozen small vectors it needs are kept warm
/// instead of reallocated per query.
struct Scratch {
  std::vector<std::array<Slot, 3>> slots;
  std::vector<uint32_t> param_ids;  // term id per parameter class
  std::vector<uint64_t> sig, vcol, pcol, pat_color, vacc, pacc, color_scratch;
  std::vector<uint32_t> perm, prev, vcanon, pcanon;
  std::vector<std::array<uint64_t, 6>> exact;
};

Scratch& GetScratch() {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace

std::string CanonicalTemplate::ShortId() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "t:%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

CanonicalTemplate CanonicalizeTemplate(const sparql::ParsedQuery& query,
                                       const sparql::EncodedBgp& bgp,
                                       rdf::TermId rdf_type_id) {
  CanonicalTemplate out;
  const size_t n = bgp.patterns.size();
  if (n == 0) {
    out.bypass_reason = "empty-bgp";
    return out;
  }
  for (const auto& tp : bgp.patterns) {
    if (tp.HasMissingConstant()) {
      // Estimates for missing constants are value-sensitive (they collapse
      // to zero); the static checker short-circuits these queries anyway.
      out.bypass_reason = "missing-constant";
      return out;
    }
  }

  // --- Classify every slot: variable, concrete constant, or parameter. ---
  Scratch& sc = GetScratch();
  const size_t num_vars = bgp.var_names.size();
  // term id -> class, by linear scan: queries carry a handful of constants.
  std::vector<uint32_t>& param_ids = sc.param_ids;
  param_ids.clear();
  auto ParamClassOf = [&](uint32_t term_id) {
    for (uint32_t c = 0; c < param_ids.size(); ++c) {
      if (param_ids[c] == term_id) return c;
    }
    param_ids.push_back(term_id);
    return static_cast<uint32_t>(param_ids.size() - 1);
  };
  std::vector<std::array<Slot, 3>>& slots = sc.slots;
  slots.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    const auto& tp = bgp.patterns[i];
    const sparql::EncodedTerm terms[3] = {tp.s, tp.p, tp.o};
    for (int pos = 0; pos < 3; ++pos) {
      const auto& t = terms[pos];
      Slot& slot = slots[i][pos];
      if (t.is_var()) {
        slot = {SlotClass::kVar, t.id, 0};
        continue;
      }
      const bool is_predicate = pos == 1;
      const bool is_type_object =
          pos == 2 && tp.p.is_bound() && rdf_type_id != rdf::kInvalidTermId &&
          tp.p.id == rdf_type_id;
      if (is_predicate || is_type_object) {
        slot = {SlotClass::kConcrete, 0, t.id};
      } else {
        slot = {SlotClass::kParam, ParamClassOf(t.id), 0};
      }
    }
  }
  const size_t num_params = param_ids.size();

  // --- Structural signature per pattern (color-independent part). ---
  std::vector<uint64_t>& sig = sc.sig;
  sig.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = kFnvOffset;
    for (int pos = 0; pos < 3; ++pos) {
      const Slot& s = slots[i][pos];
      h = Mix(h, static_cast<uint64_t>(s.cls));
      if (s.cls == SlotClass::kConcrete) h = Mix(h, s.concrete);
    }
    sig[i] = h;
  }

  // --- Seed variable colors with their roles outside the BGP so that
  // projection / ORDER BY / FILTER usage distinguishes otherwise-symmetric
  // variables (and so stays stable under renaming). Variable-name lookups
  // scan var_names directly; BGPs hold at most a few dozen variables. ---
  auto FindVar = [&](const std::string& name) -> int {
    for (size_t v = 0; v < num_vars; ++v) {
      if (bgp.var_names[v] == name) return static_cast<int>(v);
    }
    return -1;
  };

  std::vector<uint64_t>& vcol = sc.vcol;
  vcol.assign(num_vars, Mix(kFnvOffset, 1));
  if (!query.select_all && !query.count_aggregate) {
    for (size_t pi = 0; pi < query.projection.size(); ++pi) {
      int v = FindVar(query.projection[pi].name);
      if (v >= 0) vcol[v] = Mix(vcol[v], 0x70 + pi);
    }
  }
  if (query.order_by) {
    int v = FindVar(query.order_by->var.name);
    if (v >= 0) vcol[v] = Mix(vcol[v], query.order_by->descending ? 0x0d : 0x0a);
  }
  for (const auto& f : query.filters) {
    // A filter's shape (operator + the concrete constant on the other
    // side) seeds the colors of the variables it mentions.
    uint64_t fsig = Mix(kFnvOffset, static_cast<uint64_t>(f.op));
    const sparql::PatternTerm* operands[2] = {&f.lhs, &f.rhs};
    for (int side = 0; side < 2; ++side) {
      if (!sparql::IsVar(*operands[side]))
        fsig = Mix(fsig, HashBytes(sparql::AsTerm(*operands[side]).ToNTriples()));
    }
    for (int side = 0; side < 2; ++side) {
      if (!sparql::IsVar(*operands[side])) continue;
      int v = FindVar(sparql::AsVar(*operands[side]).name);
      if (v >= 0) vcol[v] = Mix(Mix(vcol[v], fsig), 0x40 + side);
    }
  }
  std::vector<uint64_t>& pcol = sc.pcol;
  pcol.assign(num_params, Mix(kFnvOffset, 2));

  // --- WL color refinement: pattern colors from slot colors, then slot
  // node colors from the *multiset* of incident pattern colors
  // (accumulated as a commutative sum of mixed contributions — order of
  // accumulation cannot matter, so no per-round sort or allocation).
  // Converges to an input-order-independent coloring for every BGP whose
  // structure distinguishes its patterns; genuinely automorphic patterns
  // keep equal colors (any tie-break yields the same canonical string). ---
  std::vector<uint64_t>& pat_color = sc.pat_color;
  pat_color.assign(n, 0);
  auto ComputePatternColors = [&]() {
    for (size_t i = 0; i < n; ++i) {
      uint64_t h = sig[i];
      for (int pos = 0; pos < 3; ++pos) {
        const Slot& s = slots[i][pos];
        switch (s.cls) {
          case SlotClass::kVar: h = Mix(h, vcol[s.node]); break;
          case SlotClass::kParam: h = Mix(h, pcol[s.node]); break;
          case SlotClass::kConcrete: h = Mix(h, Mix(0x9e3779b9, s.concrete));
        }
      }
      pat_color[i] = h;
    }
  };
  const size_t rounds = std::min<size_t>(n + 2, 12);
  std::vector<uint64_t>& vacc = sc.vacc;
  std::vector<uint64_t>& pacc = sc.pacc;
  vacc.resize(num_vars);
  pacc.resize(num_params);
  // Refinement only ever splits color classes (equal new colors require
  // equal old colors and equal neighborhoods), so an unchanged number of
  // distinct node colors means the partition reached its fixpoint and
  // further rounds cannot refine it. The distinct count is a property of
  // the color multiset, which is input-order independent, so the early
  // exit fires on the same round for every instance of a template.
  auto DistinctColors = [&]() {
    std::vector<uint64_t>& all = sc.color_scratch;
    all.assign(vcol.begin(), vcol.end());
    all.insert(all.end(), pcol.begin(), pcol.end());
    std::sort(all.begin(), all.end());
    return static_cast<size_t>(
        std::unique(all.begin(), all.end()) - all.begin());
  };
  size_t prev_distinct = 0;
  for (size_t round = 0; round < rounds; ++round) {
    ComputePatternColors();
    std::fill(vacc.begin(), vacc.end(), 0);
    std::fill(pacc.begin(), pacc.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      for (int pos = 0; pos < 3; ++pos) {
        const Slot& s = slots[i][pos];
        if (s.cls == SlotClass::kConcrete) continue;
        const uint64_t contrib =
            Mix64(pat_color[i] ^ (0x9e3779b97f4a7c15ull * (pos + 1)));
        if (s.cls == SlotClass::kVar) {
          vacc[s.node] += contrib;
        } else {
          pacc[s.node] += contrib;
        }
      }
    }
    for (size_t v = 0; v < num_vars; ++v) vcol[v] = Mix(vcol[v], vacc[v]);
    for (size_t p = 0; p < num_params; ++p) pcol[p] = Mix(pcol[p], pacc[p]);
    const size_t distinct = DistinctColors();
    if (round > 0 && distinct == prev_distinct) break;
    prev_distinct = distinct;
  }
  ComputePatternColors();

  // --- Order patterns by refined color; ties keep input order (only
  // automorphic or WL-indistinguishable patterns tie). ---
  std::vector<uint32_t>& perm = sc.perm;
  perm.resize(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return pat_color[a] != pat_color[b] ? pat_color[a] < pat_color[b]
                                        : sig[a] < sig[b];
  });

  // --- Stabilize against the exact alpha-renamed form: assign canonical
  // ids by first occurrence in the current order, re-sort by the exact
  // labeled patterns, repeat to a fixpoint. ---
  constexpr uint32_t kUnassigned = 0xffffffffu;
  std::vector<uint32_t>& vcanon = sc.vcanon;
  std::vector<uint32_t>& pcanon = sc.pcanon;
  vcanon.assign(num_vars, kUnassigned);
  pcanon.assign(num_params, kUnassigned);
  auto AssignIds = [&]() {
    std::fill(vcanon.begin(), vcanon.end(), kUnassigned);
    std::fill(pcanon.begin(), pcanon.end(), kUnassigned);
    uint32_t next_v = 0, next_p = 0;
    for (uint32_t pi : perm) {
      for (int pos = 0; pos < 3; ++pos) {
        const Slot& s = slots[pi][pos];
        if (s.cls == SlotClass::kVar && vcanon[s.node] == kUnassigned)
          vcanon[s.node] = next_v++;
        if (s.cls == SlotClass::kParam && pcanon[s.node] == kUnassigned)
          pcanon[s.node] = next_p++;
      }
    }
  };
  using ExactKey = std::array<uint64_t, 6>;
  auto ExactOf = [&](uint32_t pi) {
    ExactKey k{};
    for (int pos = 0; pos < 3; ++pos) {
      const Slot& s = slots[pi][pos];
      k[2 * pos] = static_cast<uint64_t>(s.cls);
      switch (s.cls) {
        case SlotClass::kVar: k[2 * pos + 1] = vcanon[s.node]; break;
        case SlotClass::kParam: k[2 * pos + 1] = pcanon[s.node]; break;
        case SlotClass::kConcrete: k[2 * pos + 1] = s.concrete; break;
      }
    }
    return k;
  };
  std::vector<ExactKey>& exact = sc.exact;
  std::vector<uint32_t>& prev = sc.prev;
  exact.resize(n);
  prev.resize(n);
  for (size_t round = 0; round < n + 2; ++round) {
    AssignIds();
    for (size_t i = 0; i < n; ++i) exact[i] = ExactOf(static_cast<uint32_t>(i));
    prev = perm;
    std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      return exact[a] < exact[b];
    });
    if (perm == prev) break;
  }
  AssignIds();

  // --- Render the key. Offset/limit are deliberately excluded: they do
  // not affect the logical plan, the physical plan before the engine's
  // per-instance ASK/LIMIT pipelining downgrade, or the verdict. ---
  std::string key;
  key.reserve(64 + 24 * n);
  key += query.is_ask ? "ask" : query.count_aggregate ? "count" : "sel";
  if (query.distinct) key += ",distinct";
  key += ";proj=";
  auto AppendVarByName = [&](const std::string& name) {
    int v = FindVar(name);
    if (v >= 0) {
      key += 'v';
      key += std::to_string(vcanon[v]);
    } else {
      key += "u:";  // variable absent from the BGP (always unbound)
      key += name;
    }
  };
  if (query.select_all || query.count_aggregate) {
    key += '*';
  } else {
    for (size_t pi = 0; pi < query.projection.size(); ++pi) {
      if (pi) key += ',';
      AppendVarByName(query.projection[pi].name);
    }
  }
  key += ";bgp=";
  for (uint32_t pi : perm) {
    key += '(';
    for (int pos = 0; pos < 3; ++pos) {
      if (pos) key += ' ';
      const Slot& s = slots[pi][pos];
      switch (s.cls) {
        case SlotClass::kVar:
          key += 'v';
          key += std::to_string(vcanon[s.node]);
          break;
        case SlotClass::kParam:
          key += 'p';
          key += std::to_string(pcanon[s.node]);
          break;
        case SlotClass::kConcrete:
          key += 'c';
          key += std::to_string(s.concrete);
          break;
      }
    }
    key += ')';
  }
  if (!query.filters.empty()) {
    std::vector<std::string> rendered;
    rendered.reserve(query.filters.size());
    for (const auto& f : query.filters) {
      std::string fs = "f(";
      const sparql::PatternTerm* operands[2] = {&f.lhs, &f.rhs};
      for (int side = 0; side < 2; ++side) {
        if (side) {
          fs += ' ';
          fs += sparql::CompareOpName(f.op);
          fs += ' ';
        }
        if (sparql::IsVar(*operands[side])) {
          const std::string& name = sparql::AsVar(*operands[side]).name;
          int v = FindVar(name);
          if (v >= 0) {
            fs += 'v';
            fs += std::to_string(vcanon[v]);
          } else {
            fs += "u:" + name;
          }
        } else {
          fs += sparql::AsTerm(*operands[side]).ToNTriples();
        }
      }
      fs += ')';
      rendered.push_back(std::move(fs));
    }
    std::sort(rendered.begin(), rendered.end());
    key += ";filters=";
    for (const auto& fs : rendered) key += fs;
  }
  if (query.order_by) {
    key += ";ord=";
    AppendVarByName(query.order_by->var.name);
    key += query.order_by->descending ? ":desc" : ":asc";
  }

  out.cacheable = true;
  out.key = std::move(key);
  out.hash = HashBytes(out.key);
  out.canon_to_instance = perm;
  out.instance_to_canon.assign(n, 0);
  for (uint32_t c = 0; c < n; ++c) out.instance_to_canon[perm[c]] = c;
  out.var_canon_to_instance.assign(num_vars, 0);
  out.var_instance_to_canon.assign(num_vars, 0);
  for (size_t v = 0; v < num_vars; ++v) {
    out.var_instance_to_canon[v] = vcanon[v];
    out.var_canon_to_instance[vcanon[v]] = static_cast<sparql::VarId>(v);
  }
  out.num_params = static_cast<uint32_t>(num_params);
  return out;
}

}  // namespace shapestats::cache
