#include "cache/plan_cache.h"

#include <cstdio>

#include "obs/event_log.h"
#include "obs/metrics.h"

namespace shapestats::cache {

PlanCache::PlanCache() : PlanCache(Options()) {}

PlanCache::PlanCache(Options opts)
    : opts_(opts), feedback_(opts.feedback) {
  if (opts_.capacity == 0) opts_.capacity = 1;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  m_hits_ = reg.GetCounter("cache.hits");
  m_misses_ = reg.GetCounter("cache.misses");
  m_evictions_ = reg.GetCounter("cache.evictions");
  m_invalidations_ = reg.GetCounter("cache.invalidations");
  m_bypasses_ = reg.GetCounter("cache.bypass");
  m_corrections_ = reg.GetCounter("cache.corrections");
  m_size_ = reg.GetGauge("cache.size");
  m_hit_rate_pct_ = reg.GetGauge("cache.hit_rate_pct");
}

bool PlanCache::Stale(const CachedPlan& entry) const {
  // Callers hold mu_; FeedbackStore has its own lock (PlanCache -> Feedback
  // is the only cross-lock order in the subsystem).
  return entry.feedback_version != feedback_.Version(entry.template_hash);
}

void PlanCache::PublishGauges(size_t size, uint64_t hits,
                              uint64_t misses) const {
  m_size_->Set(static_cast<int64_t>(size));
  const uint64_t lookups = hits + misses;
  m_hit_rate_pct_->Set(
      lookups == 0 ? 0 : static_cast<int64_t>(100 * hits / lookups));
}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  std::shared_ptr<const CachedPlan> hit;
  bool invalidated = false;
  std::string invalidated_id;
  {
    util::MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (it->second->second->stats_epoch == epoch_ &&
          !Stale(*it->second->second)) {
        lru_.splice(lru_.begin(), lru_, it->second);
        hit = it->second->second;
        ++hits_;
      } else {
        invalidated = true;
        invalidated_id = it->second->second->short_id;
        lru_.erase(it->second);
        index_.erase(it);
        ++invalidations_;
        ++misses_;
      }
    } else {
      ++misses_;
    }
    PublishGauges(index_.size(), hits_, misses_);
  }
  if (hit != nullptr) {
    m_hits_->Add();
    return hit;
  }
  m_misses_->Add();
  if (invalidated) {
    m_invalidations_->Add();
    obs::EventLog& log = obs::EventLog::Global();
    if (log.active()) {
      log.Emit(obs::Event("cache.invalidate").Str("template", invalidated_id));
    }
  }
  return nullptr;
}

std::shared_ptr<const CachedPlan> PlanCache::Peek(
    const std::string& key) const {
  util::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  const auto& entry = it->second->second;
  if (entry->stats_epoch != epoch_ || Stale(*entry)) return nullptr;
  return entry;
}

void PlanCache::Put(const std::string& key, std::shared_ptr<CachedPlan> entry) {
  std::string evicted_id;
  std::string inserted_id;
  {
    util::MutexLock lock(mu_);
    entry->stats_epoch = epoch_;
    inserted_id = entry->short_id;
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    lru_.emplace_front(key, std::shared_ptr<const CachedPlan>(std::move(entry)));
    index_[lru_.front().first] = lru_.begin();
    if (index_.size() > opts_.capacity) {
      evicted_id = lru_.back().second->short_id;
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
    PublishGauges(index_.size(), hits_, misses_);
  }
  obs::EventLog& log = obs::EventLog::Global();
  if (log.active()) {
    log.Emit(obs::Event("cache.insert").Str("template", inserted_id));
  }
  if (!evicted_id.empty()) {
    m_evictions_->Add();
    if (log.active()) {
      log.Emit(obs::Event("cache.evict").Str("template", evicted_id));
    }
  }
}

void PlanCache::NoteBypass() {
  {
    util::MutexLock lock(mu_);
    ++bypasses_;
  }
  m_bypasses_->Add();
}

size_t PlanCache::RecordFeedback(
    uint64_t template_hash, const std::vector<FeedbackStore::Sample>& samples) {
  if (!opts_.learn) return 0;
  const size_t published = feedback_.Record(template_hash, samples);
  if (published > 0) {
    {
      util::MutexLock lock(mu_);
      corrections_ += published;
    }
    m_corrections_->Add(published);
    obs::EventLog& log = obs::EventLog::Global();
    if (log.active()) {
      char id[20];
      std::snprintf(id, sizeof(id), "t:%016llx",
                    static_cast<unsigned long long>(template_hash));
      log.Emit(obs::Event("cache.correction")
                   .Str("template", id)
                   .Uint("published", published));
    }
  }
  return published;
}

void PlanCache::InvalidateAll() {
  util::MutexLock lock(mu_);
  ++epoch_;
  invalidations_ += index_.size();
  m_invalidations_->Add(index_.size());
  lru_.clear();
  index_.clear();
  PublishGauges(0, hits_, misses_);
}

uint64_t PlanCache::stats_epoch() const {
  util::MutexLock lock(mu_);
  return epoch_;
}

size_t PlanCache::size() const {
  util::MutexLock lock(mu_);
  return index_.size();
}

PlanCache::StatsSnapshot PlanCache::stats() const {
  StatsSnapshot s;
  {
    util::MutexLock lock(mu_);
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.invalidations = invalidations_;
    s.bypasses = bypasses_;
    s.corrections = corrections_;
    s.size = index_.size();
  }
  s.capacity = opts_.capacity;
  const uint64_t lookups = s.hits + s.misses;
  s.hit_rate = lookups == 0
                   ? 0.0
                   : static_cast<double>(s.hits) / static_cast<double>(lookups);
  return s;
}

namespace {

template <typename T>
void PermuteByPattern(const std::vector<T>& in,
                      const std::vector<uint32_t>& to_out,
                      std::vector<T>* out) {
  // `out` is a copy of `in` (same size), permuted in place to avoid a
  // second allocation on the cache-hit path.
  for (size_t i = 0; i < in.size() && i < to_out.size(); ++i) {
    (*out)[to_out[i]] = in[i];
  }
}

opt::Plan TranslatePlan(const opt::Plan& plan,
                        const std::vector<uint32_t>& pattern_map) {
  opt::Plan out = plan;
  for (uint32_t& tp : out.order) tp = pattern_map[tp];
  PermuteByPattern(plan.tp_estimates, pattern_map, &out.tp_estimates);
  PermuteByPattern(plan.correction_factors, pattern_map,
                   &out.correction_factors);
  return out;
}

phys::PhysicalPlan TranslatePhys(const phys::PhysicalPlan& plan,
                                 const std::vector<uint32_t>& pattern_map,
                                 const std::vector<sparql::VarId>& var_map) {
  phys::PhysicalPlan out = plan;
  for (phys::PhysicalStep& step : out.steps) {
    step.pattern = pattern_map[step.pattern];
    if (step.join_pos >= 0 && step.join_var < var_map.size()) {
      step.join_var = var_map[step.join_var];
    }
  }
  return out;
}

}  // namespace

opt::Plan PlanToCanonical(const opt::Plan& plan, const CanonicalTemplate& t) {
  return TranslatePlan(plan, t.instance_to_canon);
}

opt::Plan PlanToInstance(const opt::Plan& plan, const CanonicalTemplate& t) {
  return TranslatePlan(plan, t.canon_to_instance);
}

phys::PhysicalPlan PhysToCanonical(const phys::PhysicalPlan& plan,
                                   const CanonicalTemplate& t) {
  return TranslatePhys(plan, t.instance_to_canon, t.var_instance_to_canon);
}

phys::PhysicalPlan PhysToInstance(const phys::PhysicalPlan& plan,
                                  const CanonicalTemplate& t) {
  return TranslatePhys(plan, t.canon_to_instance, t.var_canon_to_instance);
}

}  // namespace shapestats::cache
