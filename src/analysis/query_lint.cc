#include "analysis/query_lint.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sparql/query_graph.h"

namespace shapestats::analysis {

namespace {

std::string PatternSubject(size_t index) {
  return "pattern " + std::to_string(index + 1);
}

}  // namespace

Diagnostics QueryLint::Lint(const sparql::EncodedBgp& bgp) const {
  static obs::Counter* lint_warnings =
      obs::MetricsRegistry::Global().GetCounter("analysis.lint_warnings");
  Diagnostics out;

  for (size_t i = 0; i < bgp.patterns.size(); ++i) {
    const sparql::EncodedPattern& tp = bgp.patterns[i];
    if (tp.HasMissingConstant()) {
      out.push_back({Severity::kWarning, "query.missing-constant",
                     PatternSubject(i),
                     "a constant does not occur in the dataset; the pattern "
                     "matches nothing and the query returns no results"});
      continue;  // downstream rules would only restate the same emptiness
    }
    if (tp.p.is_bound()) {
      const bool is_type = gs_.rdf_type_id != rdf::kInvalidTermId &&
                           tp.p.id == gs_.rdf_type_id;
      if (!is_type && gs_.Predicate(tp.p.id) == nullptr) {
        out.push_back({Severity::kWarning, "query.unknown-predicate",
                       PatternSubject(i),
                       "predicate " + dict_.Pretty(tp.p.id) +
                           " occurs in no triple; the pattern matches nothing"});
      }
      if (is_type && tp.o.is_bound() && gs_.ClassCount(tp.o.id) == 0) {
        out.push_back({Severity::kWarning, "query.unknown-class",
                       PatternSubject(i),
                       "class " + dict_.Pretty(tp.o.id) +
                           " has no instances; the pattern matches nothing"});
      }
    }
  }

  // Connected components of the join graph (patterns as nodes, shared
  // variables as edges): more than one component forces Cartesian products
  // regardless of the join order the planner picks.
  const size_t n = bgp.patterns.size();
  if (n > 1) {
    std::vector<size_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        if (sparql::Joinable(bgp.patterns[a], bgp.patterns[b])) {
          parent[find(a)] = find(b);
        }
      }
    }
    size_t components = 0;
    for (size_t i = 0; i < n; ++i) {
      if (find(i) == i) ++components;
    }
    if (components > 1) {
      out.push_back({Severity::kWarning, "query.cartesian", "query",
                     "the BGP has " + std::to_string(components) +
                         " disconnected components; every plan needs " +
                         std::to_string(components - 1) +
                         " Cartesian product(s)"});
    }
  }

  if (!out.empty()) lint_warnings->Add(out.size());
  return out;
}

Diagnostics QueryLint::Lint(const sparql::ParsedQuery& query,
                            const sparql::EncodedBgp& bgp) const {
  static obs::Counter* lint_errors =
      obs::MetricsRegistry::Global().GetCounter("analysis.lint_errors");
  Diagnostics out = Lint(bgp);
  const size_t warnings = out.size();

  auto in_bgp = [&bgp](const std::string& name) {
    return std::find(bgp.var_names.begin(), bgp.var_names.end(), name) !=
           bgp.var_names.end();
  };
  // COUNT(*) projects only the aggregate alias, which never binds in the BGP.
  if (!query.select_all && !query.count_aggregate) {
    for (const sparql::Variable& v : query.projection) {
      if (!in_bgp(v.name)) {
        out.push_back({Severity::kError, "query.unbound-projection",
                       "?" + v.name,
                       "projected variable ?" + v.name +
                           " never occurs in the BGP and can never be bound"});
      }
    }
  }
  for (const sparql::FilterComparison& f : query.filters) {
    for (const sparql::PatternTerm* t : {&f.lhs, &f.rhs}) {
      if (!sparql::IsVar(*t)) continue;
      const std::string& name = sparql::AsVar(*t).name;
      if (!in_bgp(name)) {
        out.push_back({Severity::kError, "query.unbound-filter", "?" + name,
                       "FILTER variable ?" + name +
                           " never occurs in the BGP; the filter cannot be "
                           "evaluated"});
      }
    }
  }
  if (query.order_by && !in_bgp(query.order_by->var.name)) {
    out.push_back({Severity::kError, "query.unbound-order-by",
                   "?" + query.order_by->var.name,
                   "ORDER BY variable ?" + query.order_by->var.name +
                       " never occurs in the BGP"});
  }
  if (out.size() > warnings) lint_errors->Add(out.size() - warnings);
  return out;
}

}  // namespace shapestats::analysis
