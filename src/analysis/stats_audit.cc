#include "analysis/stats_audit.h"

#include <iterator>
#include <string>

#include "obs/metrics.h"

namespace shapestats::analysis {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

void AddError(Diagnostics* out, std::string rule, std::string subject,
              std::string detail) {
  out->push_back({Severity::kError, std::move(rule), std::move(subject),
                  std::move(detail)});
}

}  // namespace

Diagnostics StatsAuditor::AuditGlobal(const stats::GlobalStats& gs,
                                      const rdf::TermDictionary* dict) const {
  Diagnostics out;
  uint64_t pred_sum = 0;
  for (const auto& [pred_id, ps] : gs.by_predicate) {
    std::string subject =
        dict != nullptr ? dict->Pretty(pred_id) : "predicate#" + U64(pred_id);
    pred_sum += ps.count;
    if (ps.dsc > ps.count) {
      AddError(&out, "global.dsc-gt-count", subject,
               "distinctSubjects " + U64(ps.dsc) + " exceeds triples " +
                   U64(ps.count));
    }
    if (ps.doc > ps.count) {
      AddError(&out, "global.doc-gt-count", subject,
               "distinctObjects " + U64(ps.doc) + " exceeds triples " +
                   U64(ps.count));
    }
    if (ps.count > gs.num_triples) {
      AddError(&out, "global.pred-count-gt-triples", subject,
               "predicate triples " + U64(ps.count) +
                   " exceed dataset triples " + U64(gs.num_triples));
    }
  }
  if (!gs.by_predicate.empty() && pred_sum != gs.num_triples) {
    AddError(&out, "global.pred-count-sum", "dataset",
             "per-predicate triple counts sum to " + U64(pred_sum) +
                 " but the dataset has " + U64(gs.num_triples) + " triples");
  }
  if (gs.num_type_subjects > gs.num_type_triples ||
      gs.num_distinct_classes > gs.num_type_triples) {
    AddError(&out, "global.type-inconsistent", "rdf:type",
             "typed subjects " + U64(gs.num_type_subjects) +
                 " / distinct classes " + U64(gs.num_distinct_classes) +
                 " exceed type triples " + U64(gs.num_type_triples));
  }
  return out;
}

Diagnostics StatsAuditor::AuditShapes(const shacl::ShapesGraph& shapes,
                                      const stats::GlobalStats& gs,
                                      const rdf::TermDictionary* dict) const {
  Diagnostics out;
  for (const shacl::NodeShape& ns : shapes.shapes()) {
    if (!ns.annotated()) {
      out.push_back({Severity::kWarning, "shape.unannotated", ns.target_class,
                     "node shape carries no sh:count statistics"});
      continue;
    }
    const uint64_t node_count = *ns.count;

    // Node-shape count is a class-instance count and must be contained in
    // the global class count of its target class.
    if (dict != nullptr) {
      if (auto cls = dict->FindIri(ns.target_class)) {
        uint64_t global_cls = gs.ClassCount(*cls);
        if (node_count > global_cls) {
          AddError(&out, "shape.node-count-gt-class", ns.target_class,
                   "node shape sh:count " + U64(node_count) +
                       " exceeds global class count " + U64(global_cls));
        }
      }
    }

    for (const shacl::PropertyShape& ps : ns.properties) {
      const std::string subject = ns.target_class + " / " + ps.path;
      if (!ps.annotated()) {
        out.push_back({Severity::kWarning, "shape.unannotated", subject,
                       "property shape carries no sh:count statistics"});
        continue;
      }
      const uint64_t count = *ps.count;
      const uint64_t distinct = ps.distinct_count.value_or(0);
      if (distinct > count) {
        AddError(&out, "shape.distinct-gt-count", subject,
                 "sh:distinctCount " + U64(distinct) + " exceeds sh:count " +
                     U64(count));
      }
      if (count > 0 && ps.distinct_count && *ps.distinct_count == 0) {
        AddError(&out, "shape.zero-distinct", subject,
                 "sh:count " + U64(count) +
                     " with sh:distinctCount 0 poisons the Eq. 1-3 "
                     "max(distinct) divisors");
      }
      // Each of the node_count instances contributes between minCount and
      // maxCount triples, so count must lie in
      // [minCount * node_count, maxCount * node_count].
      if (ps.min_count && *ps.min_count * node_count > count) {
        AddError(&out, "shape.min-count-violation", subject,
                 "sh:minCount " + U64(*ps.min_count) + " * node count " +
                     U64(node_count) + " exceeds sh:count " + U64(count));
      }
      if (ps.max_count && count > *ps.max_count * node_count) {
        AddError(&out, "shape.max-count-violation", subject,
                 "sh:count " + U64(count) + " exceeds sh:maxCount " +
                     U64(*ps.max_count) + " * node count " + U64(node_count));
      }
      // Class-local triples with a predicate are a subset of all triples
      // with that predicate.
      if (dict != nullptr) {
        if (auto pred = dict->FindIri(ps.path)) {
          const stats::PredicateStats* gp = gs.Predicate(*pred);
          uint64_t global_count = gp != nullptr ? gp->count : 0;
          if (count > global_count) {
            AddError(&out, "shape.prop-count-gt-global", subject,
                     "property shape sh:count " + U64(count) +
                         " exceeds global predicate count " +
                         U64(global_count));
          }
        }
      }
    }
  }
  return out;
}

Diagnostics StatsAuditor::AuditAll(const stats::GlobalStats& gs,
                                   const shacl::ShapesGraph& shapes,
                                   const rdf::TermDictionary* dict) const {
  static obs::Counter* audit_errors =
      obs::MetricsRegistry::Global().GetCounter("analysis.audit_errors");
  static obs::Counter* audit_warnings =
      obs::MetricsRegistry::Global().GetCounter("analysis.audit_warnings");
  Diagnostics out = AuditGlobal(gs, dict);
  Diagnostics shape_diags = AuditShapes(shapes, gs, dict);
  out.insert(out.end(), std::make_move_iterator(shape_diags.begin()),
             std::make_move_iterator(shape_diags.end()));
  uint64_t errors = CountSeverity(out, Severity::kError);
  uint64_t warnings = CountSeverity(out, Severity::kWarning);
  if (errors > 0) audit_errors->Add(errors);
  if (warnings > 0) audit_warnings->Add(warnings);
  return out;
}

}  // namespace shapestats::analysis
