// Structured findings shared by the static-analysis passes (StatsAuditor,
// PlanVerifier, QueryLint). A Diagnostic names the invariant rule that
// fired, the entity it fired on, and a human-readable detail string; tools
// render a batch as text (one line each) or JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shapestats::analysis {

/// How bad a finding is. kError means a statistic or plan is provably
/// inconsistent (plans built from it cannot be trusted); kWarning flags
/// suspicious-but-legal input (e.g. a query that can only return nothing);
/// kInfo is advisory.
enum class Severity : uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity severity);

/// One finding of a static-analysis pass.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string rule;     // stable rule id, e.g. "shape.distinct-gt-count"
  std::string subject;  // entity the rule fired on (class IRI, predicate, step)
  std::string detail;   // explanation including the offending numbers
};

using Diagnostics = std::vector<Diagnostic>;

/// True if any diagnostic has error severity.
bool HasErrors(const Diagnostics& diags);

/// Number of diagnostics at exactly the given severity.
size_t CountSeverity(const Diagnostics& diags, Severity severity);

/// Number of diagnostics that fired a given rule.
size_t CountRule(const Diagnostics& diags, const std::string& rule);

/// "severity [rule] subject: detail" — one line per diagnostic.
std::string ToText(const Diagnostics& diags);

/// JSON array:
/// [{"severity":"error","rule":"...","subject":"...","detail":"..."}]
std::string ToJson(const Diagnostics& diags);

}  // namespace shapestats::analysis
