#include "analysis/plan_verify.h"

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sparql/query_graph.h"
#include "util/string_util.h"

namespace shapestats::analysis {

namespace {

std::string StepSubject(size_t step) { return "step " + std::to_string(step + 1); }

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0; }

}  // namespace

Diagnostics PlanVerifier::Verify(const opt::Plan& plan,
                                 const sparql::EncodedBgp& bgp) const {
  static obs::Counter* verifications =
      obs::MetricsRegistry::Global().GetCounter("analysis.plan_verifications");
  static obs::Counter* violations =
      obs::MetricsRegistry::Global().GetCounter("analysis.plan_violations");
  verifications->Add();

  Diagnostics out;
  const size_t n = bgp.patterns.size();

  if (plan.order.size() != n) {
    out.push_back({Severity::kError, "plan.order-size", "plan",
                   "order has " + std::to_string(plan.order.size()) +
                       " steps for a BGP of " + std::to_string(n) +
                       " patterns"});
  }

  // Permutation check over whatever order was supplied.
  std::vector<bool> seen(n, false);
  for (size_t k = 0; k < plan.order.size(); ++k) {
    uint32_t tp = plan.order[k];
    if (tp >= n) {
      out.push_back({Severity::kError, "plan.order-not-permutation",
                     StepSubject(k),
                     "pattern index " + std::to_string(tp) +
                         " is out of range (BGP has " + std::to_string(n) +
                         " patterns)"});
      continue;
    }
    if (seen[tp]) {
      out.push_back({Severity::kError, "plan.order-not-permutation",
                     StepSubject(k),
                     "pattern index " + std::to_string(tp) +
                         " appears more than once"});
    }
    seen[tp] = true;
  }

  if (plan.step_estimates.size() != plan.order.size() ||
      (!plan.tp_estimates.empty() && plan.tp_estimates.size() != n)) {
    out.push_back({Severity::kError, "plan.sizes-mismatch", "plan",
                   "step_estimates has " +
                       std::to_string(plan.step_estimates.size()) +
                       " entries and tp_estimates " +
                       std::to_string(plan.tp_estimates.size()) +
                       " for an order of " +
                       std::to_string(plan.order.size()) + " steps"});
  }

  // Every non-first step must share a variable with some already-joined
  // pattern, or the plan must admit it contains a Cartesian product.
  if (!plan.has_cartesian) {
    for (size_t k = 1; k < plan.order.size(); ++k) {
      uint32_t b = plan.order[k];
      if (b >= n) continue;  // already reported above
      bool joins = false;
      for (size_t j = 0; j < k && !joins; ++j) {
        uint32_t a = plan.order[j];
        if (a < n) joins = sparql::Joinable(bgp.patterns[a], bgp.patterns[b]);
      }
      if (!joins) {
        out.push_back({Severity::kError, "plan.disconnected-step",
                       StepSubject(k),
                       "pattern " + std::to_string(b) +
                           " shares no variable with the join prefix and the "
                           "plan is not flagged has_cartesian"});
      }
    }
  }

  for (size_t k = 0; k < plan.step_estimates.size(); ++k) {
    if (!FiniteNonNegative(plan.step_estimates[k])) {
      out.push_back({Severity::kError, "plan.nonfinite-estimate",
                     StepSubject(k),
                     "step estimate " + CompactDouble(plan.step_estimates[k]) +
                         " is not finite and non-negative"});
    }
  }
  for (size_t i = 0; i < plan.tp_estimates.size(); ++i) {
    const card::TpEstimate& e = plan.tp_estimates[i];
    if (!FiniteNonNegative(e.card) || !FiniteNonNegative(e.dsc) ||
        !FiniteNonNegative(e.doc)) {
      out.push_back({Severity::kError, "plan.nonfinite-estimate",
                     "pattern " + std::to_string(i),
                     "tp estimate (card " + CompactDouble(e.card) + ", dsc " +
                         CompactDouble(e.dsc) + ", doc " +
                         CompactDouble(e.doc) +
                         ") is not finite and non-negative"});
    }
  }

  // Problem 2: the plan cost is the sum of the intermediate cardinalities.
  double sum = 0;
  for (double s : plan.step_estimates) sum += s;
  double tol = 1e-6 * std::max(1.0, std::max(std::fabs(sum), std::fabs(plan.total_cost)));
  if (!(std::fabs(plan.total_cost - sum) <= tol)) {  // NaN-safe: !(x<=tol)
    out.push_back({Severity::kError, "plan.cost-mismatch", "plan",
                   "total_cost " + CompactDouble(plan.total_cost) +
                       " differs from the sum of step estimates " +
                       CompactDouble(sum)});
  }

  if (!out.empty()) violations->Add(out.size());
  return out;
}

}  // namespace shapestats::analysis
