#include "analysis/plan_verify.h"

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sparql/query_graph.h"
#include "util/string_util.h"

namespace shapestats::analysis {

namespace {

std::string StepSubject(size_t step) { return "step " + std::to_string(step + 1); }

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0; }

}  // namespace

Diagnostics PlanVerifier::Verify(const opt::Plan& plan,
                                 const sparql::EncodedBgp& bgp) const {
  static obs::Counter* verifications =
      obs::MetricsRegistry::Global().GetCounter("analysis.plan_verifications");
  static obs::Counter* violations =
      obs::MetricsRegistry::Global().GetCounter("analysis.plan_violations");
  verifications->Add();

  Diagnostics out;
  const size_t n = bgp.patterns.size();

  if (plan.order.size() != n) {
    out.push_back({Severity::kError, "plan.order-size", "plan",
                   "order has " + std::to_string(plan.order.size()) +
                       " steps for a BGP of " + std::to_string(n) +
                       " patterns"});
  }

  // Permutation check over whatever order was supplied.
  std::vector<bool> seen(n, false);
  for (size_t k = 0; k < plan.order.size(); ++k) {
    uint32_t tp = plan.order[k];
    if (tp >= n) {
      out.push_back({Severity::kError, "plan.order-not-permutation",
                     StepSubject(k),
                     "pattern index " + std::to_string(tp) +
                         " is out of range (BGP has " + std::to_string(n) +
                         " patterns)"});
      continue;
    }
    if (seen[tp]) {
      out.push_back({Severity::kError, "plan.order-not-permutation",
                     StepSubject(k),
                     "pattern index " + std::to_string(tp) +
                         " appears more than once"});
    }
    seen[tp] = true;
  }

  if (plan.step_estimates.size() != plan.order.size() ||
      (!plan.tp_estimates.empty() && plan.tp_estimates.size() != n)) {
    out.push_back({Severity::kError, "plan.sizes-mismatch", "plan",
                   "step_estimates has " +
                       std::to_string(plan.step_estimates.size()) +
                       " entries and tp_estimates " +
                       std::to_string(plan.tp_estimates.size()) +
                       " for an order of " +
                       std::to_string(plan.order.size()) + " steps"});
  }

  // Every non-first step must share a variable with some already-joined
  // pattern, or the plan must admit it contains a Cartesian product.
  if (!plan.has_cartesian) {
    for (size_t k = 1; k < plan.order.size(); ++k) {
      uint32_t b = plan.order[k];
      if (b >= n) continue;  // already reported above
      bool joins = false;
      for (size_t j = 0; j < k && !joins; ++j) {
        uint32_t a = plan.order[j];
        if (a < n) joins = sparql::Joinable(bgp.patterns[a], bgp.patterns[b]);
      }
      if (!joins) {
        out.push_back({Severity::kError, "plan.disconnected-step",
                       StepSubject(k),
                       "pattern " + std::to_string(b) +
                           " shares no variable with the join prefix and the "
                           "plan is not flagged has_cartesian"});
      }
    }
  }

  for (size_t k = 0; k < plan.step_estimates.size(); ++k) {
    if (!FiniteNonNegative(plan.step_estimates[k])) {
      out.push_back({Severity::kError, "plan.nonfinite-estimate",
                     StepSubject(k),
                     "step estimate " + CompactDouble(plan.step_estimates[k]) +
                         " is not finite and non-negative"});
    }
  }
  for (size_t i = 0; i < plan.tp_estimates.size(); ++i) {
    const card::TpEstimate& e = plan.tp_estimates[i];
    if (!FiniteNonNegative(e.card) || !FiniteNonNegative(e.dsc) ||
        !FiniteNonNegative(e.doc)) {
      out.push_back({Severity::kError, "plan.nonfinite-estimate",
                     "pattern " + std::to_string(i),
                     "tp estimate (card " + CompactDouble(e.card) + ", dsc " +
                         CompactDouble(e.dsc) + ", doc " +
                         CompactDouble(e.doc) +
                         ") is not finite and non-negative"});
    }
  }

  // Problem 2: the plan cost is the sum of the intermediate cardinalities.
  double sum = 0;
  for (double s : plan.step_estimates) sum += s;
  double tol = 1e-6 * std::max(1.0, std::max(std::fabs(sum), std::fabs(plan.total_cost)));
  if (!(std::fabs(plan.total_cost - sum) <= tol)) {  // NaN-safe: !(x<=tol)
    out.push_back({Severity::kError, "plan.cost-mismatch", "plan",
                   "total_cost " + CompactDouble(plan.total_cost) +
                       " differs from the sum of step estimates " +
                       CompactDouble(sum)});
  }

  if (!out.empty()) violations->Add(out.size());
  return out;
}

Diagnostics PlanVerifier::Verify(const phys::PhysicalPlan& pplan,
                                 const opt::Plan& plan,
                                 const sparql::EncodedBgp& bgp) const {
  static obs::Counter* verifications =
      obs::MetricsRegistry::Global().GetCounter("analysis.phys_verifications");
  static obs::Counter* violations =
      obs::MetricsRegistry::Global().GetCounter("analysis.phys_violations");
  verifications->Add();

  Diagnostics out;
  const size_t n = bgp.patterns.size();

  if (pplan.steps.size() != plan.order.size()) {
    out.push_back({Severity::kError, "phys.steps-size", "plan",
                   "physical plan has " + std::to_string(pplan.steps.size()) +
                       " steps for a join order of " +
                       std::to_string(plan.order.size())});
  }

  std::vector<bool> bound(bgp.NumVars(), false);
  for (size_t k = 0; k < pplan.steps.size(); ++k) {
    const phys::PhysicalStep& st = pplan.steps[k];
    if (k < plan.order.size() && st.pattern != plan.order[k]) {
      out.push_back({Severity::kError, "phys.pattern-mismatch",
                     StepSubject(k),
                     "physical step executes pattern " +
                         std::to_string(st.pattern) +
                         " but the join order has pattern " +
                         std::to_string(plan.order[k])});
    }
    if (st.pattern >= n) continue;  // the logical overload reports this
    const sparql::EncodedPattern& tp = bgp.patterns[st.pattern];

    if (k == 0 && st.op != phys::OpKind::kScan) {
      out.push_back({Severity::kError, "phys.first-step", StepSubject(k),
                     std::string("first step must be an index scan, got ") +
                         phys::OpName(st.op)});
    }

    const bool is_join = st.op == phys::OpKind::kInlj ||
                         st.op == phys::OpKind::kMerge ||
                         st.op == phys::OpKind::kHash;
    if (k > 0 && is_join && st.join_pos >= 0 && st.join_pos <= 2) {
      const sparql::EncodedTerm& jt =
          st.join_pos == 0 ? tp.s : (st.join_pos == 1 ? tp.p : tp.o);
      if (!jt.is_var() || jt.id != st.join_var || st.join_var >= bound.size() ||
          !bound[st.join_var]) {
        out.push_back({Severity::kError, "phys.join-var-unbound",
                       StepSubject(k),
                       "join component " + std::to_string(st.join_pos) +
                           " does not hold variable " +
                           std::to_string(st.join_var) +
                           " bound by the join prefix"});
      }
    } else if (k > 0 && is_join) {
      out.push_back({Severity::kError, "phys.join-var-unbound", StepSubject(k),
                     std::string(phys::OpName(st.op)) +
                         " step has no join component"});
    }

    if (st.op == phys::OpKind::kMerge &&
        !phys::MergeRunAvailable(tp, st.join_pos)) {
      out.push_back({Severity::kError, "phys.merge-order-unavailable",
                     StepSubject(k),
                     "no index run sorted by component " +
                         std::to_string(st.join_pos) +
                         " exists for this pattern's constants"});
    }

    if (k > 0) {
      bool joins = false;
      for (const sparql::EncodedTerm* e : {&tp.s, &tp.p, &tp.o}) {
        if (e->is_var() && e->id < bound.size() && bound[e->id]) joins = true;
      }
      if (st.op == phys::OpKind::kProduct && joins) {
        out.push_back({Severity::kError, "phys.product-mislabel",
                       StepSubject(k),
                       "step labeled product but shares a variable with the "
                       "join prefix"});
      } else if (is_join && !joins) {
        out.push_back({Severity::kError, "phys.product-mislabel",
                       StepSubject(k),
                       std::string("step labeled ") + phys::OpName(st.op) +
                           " but shares no variable with the join prefix"});
      }
    }

    if (st.op == phys::OpKind::kHash &&
        (st.est_left > 0 || st.est_right > 0)) {
      const bool want_right = st.est_right <= st.est_left;
      if (st.build_right != want_right) {
        out.push_back({Severity::kError, "phys.build-side", StepSubject(k),
                       "hash build side is " +
                           std::string(st.build_right ? "right" : "left") +
                           " but estimates (left " +
                           CompactDouble(st.est_left) + ", right " +
                           CompactDouble(st.est_right) +
                           ") favor the other side"});
      }
    }

    if (!FiniteNonNegative(st.est_left) || !FiniteNonNegative(st.est_right) ||
        !FiniteNonNegative(st.est_out)) {
      out.push_back({Severity::kError, "phys.nonfinite-estimate",
                     StepSubject(k),
                     "operator estimates (left " + CompactDouble(st.est_left) +
                         ", right " + CompactDouble(st.est_right) + ", out " +
                         CompactDouble(st.est_out) +
                         ") are not finite and non-negative"});
    }

    for (const sparql::EncodedTerm* e : {&tp.s, &tp.p, &tp.o}) {
      if (e->is_var() && e->id < bound.size()) bound[e->id] = true;
    }
  }

  if (!out.empty()) violations->Add(out.size());
  return out;
}

}  // namespace shapestats::analysis
