// PlanVerifier: structural validation of opt::Plan against the BGP it was
// built for. The greedy planner (Algorithm 1) must emit a permutation of
// the patterns in which every non-first step joins with the prefix (unless
// the plan is flagged Cartesian), with finite non-negative estimates whose
// sum is the reported total cost (Problem 2). Violations mean a planner or
// estimator bug, so the verifier runs on every plan in the engine (see
// EngineOptions::verify_plans), in EXPLAIN / EXPLAIN ANALYZE, and across
// the randomized property tests.
//
// Rule catalog (all severity error):
//   plan.order-size            order length != number of BGP patterns
//   plan.order-not-permutation duplicate or out-of-range pattern index
//   plan.sizes-mismatch        step/tp estimate vectors inconsistent with order
//   plan.disconnected-step     step shares no variable with the prefix while
//                              the plan is not flagged has_cartesian
//   plan.nonfinite-estimate    negative, NaN or infinite estimate
//   plan.cost-mismatch         total_cost != sum of step estimates
//
// Physical-plan rules (all severity error), applied to the operator
// annotations a phys::PhysicalPlanner adds on top of the join order:
//   phys.steps-size            physical step count != logical order length
//   phys.pattern-mismatch      steps[k].pattern != order[k]
//   phys.first-step            step 0 is not an index scan
//   phys.join-var-unbound      join step whose join component is not a
//                              variable bound by the join prefix
//   phys.merge-order-unavailable  merge step without a sorted index run on
//                              the join component (MergeRunAvailable)
//   phys.product-mislabel      product step that shares a variable with the
//                              prefix, or a join step that shares none
//   phys.build-side            hash build side contradicts the estimates
//   phys.nonfinite-estimate    negative, NaN or infinite operator estimate
#pragma once

#include "analysis/diagnostics.h"
#include "opt/plan.h"
#include "phys/physical_plan.h"
#include "sparql/encoded_bgp.h"

namespace shapestats::analysis {

class PlanVerifier {
 public:
  /// Verifies `plan` against `bgp`; returns one diagnostic per violation
  /// (empty when the plan is well-formed). Publishes
  /// analysis.plan_verifications / analysis.plan_violations counters.
  Diagnostics Verify(const opt::Plan& plan, const sparql::EncodedBgp& bgp) const;

  /// Verifies the physical plan `pplan` against the logical `plan` it
  /// annotates: operator/sort-order prerequisites, build-side consistency
  /// and estimate sanity (the phys.* rule catalog above). Structural
  /// problems of the logical plan itself are the other overload's job.
  /// Publishes analysis.phys_verifications / analysis.phys_violations.
  Diagnostics Verify(const phys::PhysicalPlan& pplan, const opt::Plan& plan,
                     const sparql::EncodedBgp& bgp) const;
};

}  // namespace shapestats::analysis
