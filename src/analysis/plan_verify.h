// PlanVerifier: structural validation of opt::Plan against the BGP it was
// built for. The greedy planner (Algorithm 1) must emit a permutation of
// the patterns in which every non-first step joins with the prefix (unless
// the plan is flagged Cartesian), with finite non-negative estimates whose
// sum is the reported total cost (Problem 2). Violations mean a planner or
// estimator bug, so the verifier runs on every plan in the engine (see
// EngineOptions::verify_plans), in EXPLAIN / EXPLAIN ANALYZE, and across
// the randomized property tests.
//
// Rule catalog (all severity error):
//   plan.order-size            order length != number of BGP patterns
//   plan.order-not-permutation duplicate or out-of-range pattern index
//   plan.sizes-mismatch        step/tp estimate vectors inconsistent with order
//   plan.disconnected-step     step shares no variable with the prefix while
//                              the plan is not flagged has_cartesian
//   plan.nonfinite-estimate    negative, NaN or infinite estimate
//   plan.cost-mismatch         total_cost != sum of step estimates
#pragma once

#include "analysis/diagnostics.h"
#include "opt/plan.h"
#include "sparql/encoded_bgp.h"

namespace shapestats::analysis {

class PlanVerifier {
 public:
  /// Verifies `plan` against `bgp`; returns one diagnostic per violation
  /// (empty when the plan is well-formed). Publishes
  /// analysis.plan_verifications / analysis.plan_violations counters.
  Diagnostics Verify(const opt::Plan& plan, const sparql::EncodedBgp& bgp) const;
};

}  // namespace shapestats::analysis
