// ShapeChecker: static satisfiability analysis of a BGP against the
// dataset's dictionary, global statistics, and annotated SHACL shapes —
// before any planning happens. Where QueryLint flags suspicious queries,
// the checker issues a *verdict*: a query proven empty is answered with
// zero rows in microseconds, skipping optimize + execute entirely
// (QueryEngine short-circuits kEmpty/kEmptyByStats verdicts).
//
// Every emptiness rule is exact on the dataset the statistics were computed
// from — the property-test soundness oracle asserts that no non-satisfiable
// verdict ever contradicts real execution. Rule catalog:
//
//   check.missing-constant    a constant is absent from the dictionary; the
//                             pattern matches nothing            -> kEmpty
//   check.unknown-predicate   bound predicate with no triples and no
//                             property shape                     -> kEmpty
//   check.empty-class         rdf:type object names a class with zero
//                             instances (zero-count node shape)  -> kEmptyByStats
//   check.max-count-conflict  two patterns force distinct constant objects
//                             through a path with observed maxCount 1
//                             (globally, or under the subject's anchored /
//                             inferred node shape)               -> kEmptyByStats
//   check.disjoint-classes    one subject typed by two classes whose
//                             instance sets are provably disjoint (every
//                             typed entity has exactly one type) -> kEmptyByStats
//   check.filter-contradiction FILTER(?x != ?x) and friends      -> kEmpty
//   check.duplicate-pattern   a triple pattern is repeated verbatim
//                             (redundancy warning)
//   check.subsumed-pattern    a pattern restates another's existence
//                             constraint through a throwaway variable
//                             (redundancy warning)
//   check.filter-tautology    FILTER(?x = ?x) and friends (advisory)
//   check.inferred-class      an untyped subject variable provably ranges
//                             over one class's instances; the inferred
//                             sh:targetClass anchor is handed to the
//                             cardinality estimator for tighter SS plans
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.h"
#include "rdf/dictionary.h"
#include "shacl/shapes.h"
#include "sparql/encoded_bgp.h"
#include "sparql/query.h"
#include "stats/global_stats.h"

namespace shapestats::analysis {

/// The checker's verdict on one BGP.
enum class Satisfiability : uint8_t {
  kSatisfiable,   // no emptiness proof found (the common case)
  kEmpty,         // provably empty from the dictionary / data alone
  kEmptyByStats,  // provably empty from statistics (class counts, maxCount)
};

const char* SatisfiabilityName(Satisfiability verdict);

/// A proven class membership for an untyped subject variable: every
/// binding of `var` is an instance of `class_iri` (exactness condition:
/// the class's property shape for some predicate of `var` accounts for
/// every occurrence of that predicate in the data).
struct InferredConstraint {
  sparql::VarId var = 0;
  rdf::TermId class_id = rdf::kInvalidTermId;
  std::string class_iri;  // sh:targetClass of the proving node shape
  std::string reason;     // the predicate whose coverage proved membership
};

/// Verdict + findings + inferred constraints for one BGP.
struct ShapeCheckResult {
  Satisfiability verdict = Satisfiability::kSatisfiable;
  /// Rule id that decided a non-satisfiable verdict ("" when satisfiable).
  /// kEmpty proofs take precedence over kEmptyByStats ones.
  std::string rule;
  Diagnostics diagnostics;
  std::vector<InferredConstraint> inferred;

  bool provably_empty() const {
    return verdict != Satisfiability::kSatisfiable;
  }

  /// Inferred constraints as a subject-var -> class anchor map, the form
  /// the cardinality estimator consumes (card::AnchoredEstimator). When
  /// several predicates prove different classes for one variable, the most
  /// selective (smallest instance count) class wins.
  std::unordered_map<sparql::VarId, rdf::TermId> InferredAnchors(
      const stats::GlobalStats& gs) const;
};

/// Static semantic analyzer over (parsed query, encoded BGP). Stateless
/// apart from the borrowed statistics; cheap to construct per query.
class ShapeChecker {
 public:
  /// `shapes` may be null (global-statistics mode); shape-backed rules and
  /// class inference then stay silent and only exact global rules fire.
  ShapeChecker(const stats::GlobalStats& gs, const shacl::ShapesGraph* shapes,
               const rdf::TermDictionary& dict)
      : gs_(gs), shapes_(shapes), dict_(dict) {}

  /// Checks one query. Publishes static_check.runs / static_check.empty /
  /// static_check.empty_by_stats / static_check.inferred counters.
  ShapeCheckResult Check(const sparql::ParsedQuery& query,
                         const sparql::EncodedBgp& bgp) const;

 private:
  const stats::GlobalStats& gs_;
  const shacl::ShapesGraph* shapes_;
  const rdf::TermDictionary& dict_;
};

}  // namespace shapestats::analysis
