#include "analysis/shape_check.h"

#include <algorithm>
#include <set>
#include <utility>

#include "card/estimator.h"
#include "obs/metrics.h"

namespace shapestats::analysis {

namespace {

using sparql::EncodedBgp;
using sparql::EncodedPattern;
using sparql::EncodedTerm;
using sparql::VarId;

std::string PatternSubject(size_t index) {
  return "pattern " + std::to_string(index + 1);
}

std::string PairSubject(size_t i, size_t j) {
  return "patterns " + std::to_string(i + 1) + "," + std::to_string(j + 1);
}

/// Terms compare equal when they are the same variable or the same
/// dictionary constant (kMissing never keys a group).
bool SameTerm(const EncodedTerm& a, const EncodedTerm& b) {
  return a.kind == b.kind && a.id == b.id && !a.is_missing();
}

bool IsTypePredicate(const stats::GlobalStats& gs, const EncodedTerm& p) {
  return gs.rdf_type_id != rdf::kInvalidTermId && p.is_bound() &&
         p.id == gs.rdf_type_id;
}

/// True when the global statistics prove every typed entity carries exactly
/// one rdf:type triple — then distinct classes have disjoint instance sets.
bool SingleTypedData(const stats::GlobalStats& gs) {
  return gs.num_type_triples > 0 &&
         gs.num_type_triples == gs.num_type_subjects;
}

}  // namespace

const char* SatisfiabilityName(Satisfiability verdict) {
  switch (verdict) {
    case Satisfiability::kSatisfiable: return "satisfiable";
    case Satisfiability::kEmpty: return "empty";
    case Satisfiability::kEmptyByStats: return "empty-by-stats";
  }
  return "?";
}

std::unordered_map<VarId, rdf::TermId> ShapeCheckResult::InferredAnchors(
    const stats::GlobalStats& gs) const {
  std::unordered_map<VarId, rdf::TermId> anchors;
  for (const InferredConstraint& c : inferred) {
    if (c.class_id == rdf::kInvalidTermId) continue;
    auto it = anchors.find(c.var);
    if (it == anchors.end()) {
      anchors.emplace(c.var, c.class_id);
    } else if (gs.ClassCount(c.class_id) < gs.ClassCount(it->second)) {
      it->second = c.class_id;  // keep the most selective class
    }
  }
  return anchors;
}

ShapeCheckResult ShapeChecker::Check(const sparql::ParsedQuery& query,
                                     const EncodedBgp& bgp) const {
  static obs::Counter* runs =
      obs::MetricsRegistry::Global().GetCounter("static_check.runs");
  static obs::Counter* empty_verdicts =
      obs::MetricsRegistry::Global().GetCounter("static_check.empty");
  static obs::Counter* empty_by_stats_verdicts =
      obs::MetricsRegistry::Global().GetCounter("static_check.empty_by_stats");
  static obs::Counter* inferred_total =
      obs::MetricsRegistry::Global().GetCounter("static_check.inferred");

  ShapeCheckResult out;
  // kEmpty proofs outrank kEmptyByStats; the first proof at the winning
  // rank names the verdict's rule.
  auto prove = [&out](Satisfiability verdict, const char* rule) {
    if (verdict == Satisfiability::kEmpty) {
      if (out.verdict != Satisfiability::kEmpty) {
        out.verdict = verdict;
        out.rule = rule;
      }
    } else if (out.verdict == Satisfiability::kSatisfiable) {
      out.verdict = verdict;
      out.rule = rule;
    }
  };

  // --- per-pattern rules -------------------------------------------------
  for (size_t i = 0; i < bgp.patterns.size(); ++i) {
    const EncodedPattern& tp = bgp.patterns[i];
    if (tp.HasMissingConstant()) {
      out.diagnostics.push_back(
          {Severity::kWarning, "check.missing-constant", PatternSubject(i),
           "a constant is absent from the dataset dictionary; the pattern "
           "matches nothing"});
      prove(Satisfiability::kEmpty, "check.missing-constant");
      continue;  // further rules would restate the same emptiness
    }
    if (tp.p.is_bound() && !IsTypePredicate(gs_, tp.p)) {
      const rdf::Term& pred = dict_.term(tp.p.id);
      const bool in_data = gs_.Predicate(tp.p.id) != nullptr;
      const bool in_shapes =
          shapes_ != nullptr && pred.is_iri() &&
          !shapes_->CandidatesForPath(pred.lexical).empty();
      if (!in_data && !in_shapes) {
        out.diagnostics.push_back(
            {Severity::kWarning, "check.unknown-predicate", PatternSubject(i),
             "predicate " + dict_.Pretty(tp.p.id) +
                 " occurs in no triple and no property shape; the pattern "
                 "matches nothing"});
        prove(Satisfiability::kEmpty, "check.unknown-predicate");
      }
    }
    if (IsTypePredicate(gs_, tp.p) && tp.o.is_bound() &&
        gs_.ClassCount(tp.o.id) == 0) {
      out.diagnostics.push_back(
          {Severity::kWarning, "check.empty-class", PatternSubject(i),
           "class " + dict_.Pretty(tp.o.id) +
               " has a zero-count node shape (no instances); the pattern "
               "matches nothing"});
      prove(Satisfiability::kEmptyByStats, "check.empty-class");
    }
  }

  // --- class inference (Section 6.1 anchors for untyped variables) -------
  // Exactness condition: predicate p has exactly one candidate node shape C
  // and C's property shape accounts for every p-triple in the data — then
  // every p-subject is an instance of C, so an untyped subject variable of
  // a p-pattern provably ranges over C's instances.
  std::unordered_map<VarId, rdf::TermId> explicit_anchors =
      card::ComputeShapeAnchors(bgp, gs_);
  if (shapes_ != nullptr) {
    std::set<std::pair<VarId, rdf::TermId>> seen;
    for (const EncodedPattern& tp : bgp.patterns) {
      if (!tp.s.is_var() || !tp.p.is_bound() || IsTypePredicate(gs_, tp.p)) {
        continue;
      }
      if (explicit_anchors.count(tp.s.id) != 0) continue;
      const rdf::Term& pred = dict_.term(tp.p.id);
      if (!pred.is_iri()) continue;
      std::vector<const shacl::NodeShape*> candidates =
          shapes_->CandidatesForPath(pred.lexical);
      if (candidates.size() != 1) continue;
      const shacl::NodeShape* ns = candidates.front();
      const shacl::PropertyShape* psh = ns->FindProperty(pred.lexical);
      const stats::PredicateStats* gp = gs_.Predicate(tp.p.id);
      if (!ns->annotated() || psh == nullptr || !psh->annotated() ||
          gp == nullptr || gp->count == 0 || *psh->count != gp->count) {
        continue;
      }
      std::optional<rdf::TermId> class_id = dict_.FindIri(ns->target_class);
      if (!class_id.has_value()) continue;
      if (!seen.emplace(tp.s.id, *class_id).second) continue;
      out.inferred.push_back({tp.s.id, *class_id, ns->target_class,
                              pred.lexical});
      out.diagnostics.push_back(
          {Severity::kInfo, "check.inferred-class",
           "?" + bgp.var_names[tp.s.id],
           "every subject of " + dict_.Pretty(tp.p.id) +
               " is an instance of " + ns->target_class +
               " (property shape covers all " +
               std::to_string(gp->count) +
               " occurrences); inferred sh:targetClass anchor"});
    }
  }
  std::unordered_map<VarId, rdf::TermId> anchors = explicit_anchors;
  for (const auto& [var, cls] : out.InferredAnchors(gs_)) {
    anchors.emplace(var, cls);
  }

  // --- pairwise rules ----------------------------------------------------
  // Variable occurrence counts, for the subsumption rule's "throwaway
  // variable" test.
  std::vector<uint32_t> var_uses(bgp.NumVars(), 0);
  for (const EncodedPattern& tp : bgp.patterns) {
    for (const EncodedTerm* t : {&tp.s, &tp.p, &tp.o}) {
      if (t->is_var()) ++var_uses[t->id];
    }
  }
  for (size_t i = 0; i < bgp.patterns.size(); ++i) {
    const EncodedPattern& a = bgp.patterns[i];
    for (size_t j = i + 1; j < bgp.patterns.size(); ++j) {
      const EncodedPattern& b = bgp.patterns[j];
      const bool same_subject = SameTerm(a.s, b.s);
      const bool same_predicate = SameTerm(a.p, b.p);
      if (same_subject && same_predicate && SameTerm(a.o, b.o)) {
        out.diagnostics.push_back(
            {Severity::kWarning, "check.duplicate-pattern", PairSubject(i, j),
             "identical triple patterns; the duplicate adds no constraint"});
        continue;
      }
      // Subsumption: b restates a's existence constraint when its object is
      // a variable used nowhere else (any solution of a extends to b).
      if (same_subject && same_predicate && b.o.is_var() &&
          var_uses[b.o.id] == 1) {
        out.diagnostics.push_back(
            {Severity::kWarning, "check.subsumed-pattern", PairSubject(i, j),
             "pattern " + std::to_string(j + 1) + " only restates pattern " +
                 std::to_string(i + 1) + "'s existence constraint (object ?" +
                 bgp.var_names[b.o.id] + " occurs nowhere else)"});
        continue;
      }
      if (same_subject && same_predicate && a.o.is_var() &&
          var_uses[a.o.id] == 1 && !b.o.is_var()) {
        out.diagnostics.push_back(
            {Severity::kWarning, "check.subsumed-pattern", PairSubject(i, j),
             "pattern " + std::to_string(i + 1) + " only restates pattern " +
                 std::to_string(j + 1) + "'s existence constraint (object ?" +
                 bgp.var_names[a.o.id] + " occurs nowhere else)"});
        continue;
      }
      if (!same_subject || !a.p.is_bound() || !same_predicate) continue;
      if (!a.o.is_bound() || !b.o.is_bound() || a.o.id == b.o.id) continue;
      if (IsTypePredicate(gs_, a.p)) {
        // Two distinct classes for one subject: provably empty when the
        // data is single-typed (instance sets of distinct classes are
        // disjoint). Zero-count classes already fired check.empty-class.
        if (SingleTypedData(gs_)) {
          out.diagnostics.push_back(
              {Severity::kWarning, "check.disjoint-classes", PairSubject(i, j),
               "subject is typed both " + dict_.Pretty(a.o.id) + " and " +
                   dict_.Pretty(b.o.id) +
                   "; every typed entity has exactly one type, so the "
                   "classes are disjoint"});
          prove(Satisfiability::kEmptyByStats, "check.disjoint-classes");
        }
        continue;
      }
      // Distinct constant objects through a max-count-1 path. Global proof:
      // count == DSC means every subject has exactly one such triple.
      // Shape proof: the subject variable is anchored (explicitly or by
      // inference) to a class whose property shape observed maxCount 1.
      const stats::PredicateStats* gp = gs_.Predicate(a.p.id);
      bool max_one = gp != nullptr && gp->count == gp->dsc;
      std::string source = "every subject has exactly one " +
                           dict_.Pretty(a.p.id) + " triple (count = DSC)";
      if (!max_one && shapes_ != nullptr && a.s.is_var()) {
        auto anchor = anchors.find(a.s.id);
        if (anchor != anchors.end()) {
          const rdf::Term& cls = dict_.term(anchor->second);
          const shacl::NodeShape* ns =
              cls.is_iri() ? shapes_->FindByClass(cls.lexical) : nullptr;
          const rdf::Term& pred = dict_.term(a.p.id);
          const shacl::PropertyShape* psh =
              ns != nullptr && pred.is_iri() ? ns->FindProperty(pred.lexical)
                                            : nullptr;
          if (psh != nullptr && psh->max_count.has_value() &&
              *psh->max_count == 1) {
            max_one = true;
            source = "shape " + cls.lexical + " observed sh:maxCount 1 for " +
                     dict_.Pretty(a.p.id);
          }
        }
      }
      if (max_one) {
        out.diagnostics.push_back(
            {Severity::kWarning, "check.max-count-conflict", PairSubject(i, j),
             "patterns force two distinct objects (" + dict_.Pretty(a.o.id) +
                 ", " + dict_.Pretty(b.o.id) + ") through a max-count-1 path: " +
                 source});
        prove(Satisfiability::kEmptyByStats, "check.max-count-conflict");
      }
    }
  }

  // --- filter rules ------------------------------------------------------
  // FILTER(?x op ?x): contradiction for !=, <, > (no binding passes) and a
  // tautology for =, <=, >=. Only claimed when the variable is bound by the
  // BGP — otherwise execution fails with an error, not an empty result.
  for (const sparql::FilterComparison& f : query.filters) {
    if (!sparql::IsVar(f.lhs) || !sparql::IsVar(f.rhs)) continue;
    const std::string& name = sparql::AsVar(f.lhs).name;
    if (name != sparql::AsVar(f.rhs).name) continue;
    if (std::find(bgp.var_names.begin(), bgp.var_names.end(), name) ==
        bgp.var_names.end()) {
      continue;
    }
    const bool contradiction = f.op == sparql::CompareOp::kNe ||
                               f.op == sparql::CompareOp::kLt ||
                               f.op == sparql::CompareOp::kGt;
    if (contradiction) {
      out.diagnostics.push_back(
          {Severity::kWarning, "check.filter-contradiction", "?" + name,
           std::string("FILTER(?") + name + " " +
               sparql::CompareOpName(f.op) + " ?" + name +
               ") rejects every binding"});
      prove(Satisfiability::kEmpty, "check.filter-contradiction");
    } else {
      out.diagnostics.push_back(
          {Severity::kInfo, "check.filter-tautology", "?" + name,
           std::string("FILTER(?") + name + " " +
               sparql::CompareOpName(f.op) + " ?" + name +
               ") accepts every binding and can be dropped"});
    }
  }

  runs->Add();
  if (out.verdict == Satisfiability::kEmpty) empty_verdicts->Add();
  if (out.verdict == Satisfiability::kEmptyByStats) {
    empty_by_stats_verdicts->Add();
  }
  if (!out.inferred.empty()) inferred_total->Add(out.inferred.size());
  return out;
}

}  // namespace shapestats::analysis
