// QueryLint: static checks over a parsed-and-encoded BGP against the
// dataset's dictionary and global statistics, before any planning happens.
// Surfaced as warnings in sparql_shell, through QueryEngine::Lint, and by
// the stats_lint tool. Lint findings never block execution — a query that
// can only return the empty answer is still a valid query.
//
// Rule catalog (severity warning):
//   query.missing-constant   a constant does not occur in the dataset, so the
//                            pattern (and the whole BGP) matches nothing
//   query.unknown-predicate  bound predicate with no triples in the dataset
//   query.unknown-class      rdf:type object names a class with no instances
//   query.cartesian          the BGP's join graph is disconnected, forcing at
//                            least one Cartesian product
//
// Degenerate-query rules (severity error — the executor would reject the
// query with InvalidArgument anyway; linting them statically lets the
// serving plane answer 400 with structured diagnostics before admission):
//   query.unbound-projection  a projected variable never occurs in the BGP
//   query.unbound-filter      a FILTER variable never occurs in the BGP
//   query.unbound-order-by    the ORDER BY variable never occurs in the BGP
#pragma once

#include "analysis/diagnostics.h"
#include "rdf/dictionary.h"
#include "sparql/encoded_bgp.h"
#include "sparql/query.h"
#include "stats/global_stats.h"

namespace shapestats::analysis {

class QueryLint {
 public:
  QueryLint(const stats::GlobalStats& gs, const rdf::TermDictionary& dict)
      : gs_(gs), dict_(dict) {}

  /// Lints the encoded BGP; publishes the analysis.lint_warnings counter.
  Diagnostics Lint(const sparql::EncodedBgp& bgp) const;

  /// Full lint: the BGP rules above plus the error-severity degenerate-query
  /// rules that need the parsed query (projection / FILTER / ORDER BY
  /// variables that never occur in the BGP).
  Diagnostics Lint(const sparql::ParsedQuery& query,
                   const sparql::EncodedBgp& bgp) const;

 private:
  const stats::GlobalStats& gs_;
  const rdf::TermDictionary& dict_;
};

}  // namespace shapestats::analysis
