// StatsAuditor: static consistency checks over the statistics artifacts
// that drive join ordering — the extended-VoID global statistics
// (Section 5) and the annotated SHACL shapes (Figure 3). A single corrupt
// number (e.g. distinctCount > count, or a zero distinct count feeding the
// Eq. 1-3 divisors) silently degrades every plan built from it, so these
// invariants are checked before query time: in the bench harness after
// annotation, and on demand via the stats_lint tool.
//
// Rule catalog (severity error unless noted):
//   global.dsc-gt-count          per-predicate distinctSubjects > triples
//   global.doc-gt-count          per-predicate distinctObjects > triples
//   global.pred-count-gt-triples per-predicate triples > dataset triples
//   global.pred-count-sum        sum of per-predicate triples != dataset triples
//   global.type-inconsistent     typed subjects or distinct classes > type triples
//   shape.distinct-gt-count      sh:distinctCount > sh:count
//   shape.zero-distinct          sh:count > 0 with sh:distinctCount = 0
//   shape.min-count-violation    sh:minCount * node count > sh:count
//   shape.max-count-violation    sh:count > sh:maxCount * node count
//   shape.node-count-gt-class    node shape sh:count > global class count
//   shape.prop-count-gt-global   property shape sh:count > global predicate count
//   shape.unannotated (warning)  node/property shape without statistics
#pragma once

#include "analysis/diagnostics.h"
#include "rdf/dictionary.h"
#include "shacl/shapes.h"
#include "stats/global_stats.h"

namespace shapestats::analysis {

class StatsAuditor {
 public:
  /// Checks the internal consistency of the global statistics. `dict` is
  /// optional (predicate subjects fall back to numeric term ids).
  Diagnostics AuditGlobal(const stats::GlobalStats& gs,
                          const rdf::TermDictionary* dict = nullptr) const;

  /// Checks shape-local invariants and shape-vs-global containment.
  /// `dict` is optional; the shape-vs-global rules that need term lookup
  /// (class counts, predicate counts) are skipped without it.
  Diagnostics AuditShapes(const shacl::ShapesGraph& shapes,
                          const stats::GlobalStats& gs,
                          const rdf::TermDictionary* dict = nullptr) const;

  /// AuditGlobal + AuditShapes; publishes analysis.audit_errors /
  /// analysis.audit_warnings counters to the global metrics registry.
  Diagnostics AuditAll(const stats::GlobalStats& gs,
                       const shacl::ShapesGraph& shapes,
                       const rdf::TermDictionary* dict = nullptr) const;
};

}  // namespace shapestats::analysis
