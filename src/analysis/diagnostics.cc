#include "analysis/diagnostics.h"

#include <algorithm>

#include "obs/metrics.h"

namespace shapestats::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

bool HasErrors(const Diagnostics& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

size_t CountSeverity(const Diagnostics& diags, Severity severity) {
  return static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(), [severity](const Diagnostic& d) {
        return d.severity == severity;
      }));
}

size_t CountRule(const Diagnostics& diags, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

std::string ToText(const Diagnostics& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += SeverityName(d.severity);
    out += " [" + d.rule + "] " + d.subject + ": " + d.detail + "\n";
  }
  return out;
}

std::string ToJson(const Diagnostics& diags) {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i) out += ",";
    out += std::string("{\"severity\":\"") + SeverityName(d.severity) +
           "\",\"rule\":\"" + obs::JsonEscape(d.rule) + "\",\"subject\":\"" +
           obs::JsonEscape(d.subject) + "\",\"detail\":\"" +
           obs::JsonEscape(d.detail) + "\"}";
  }
  out += "]";
  return out;
}

}  // namespace shapestats::analysis
