#include "shacl/generator.h"

#include <algorithm>
#include <map>
#include <set>

#include "rdf/vocab.h"

namespace shapestats::shacl {

namespace vocab = rdf::vocab;

Result<ShapesGraph> GenerateShapes(const rdf::Graph& data,
                                   const GeneratorOptions& options) {
  if (!data.finalized()) {
    return Status::InvalidArgument("data graph must be finalized");
  }
  const rdf::TermDictionary& dict = data.dict();
  auto type = dict.FindIri(vocab::kRdfType);
  if (!type) {
    return Status::InvalidArgument("data graph has no rdf:type triples");
  }

  // Collect classes in deterministic (IRI) order.
  std::map<std::string, rdf::TermId> classes;
  {
    std::set<rdf::TermId> seen;
    for (const rdf::Triple& t : data.PredicateByObject(*type)) {
      if (seen.insert(t.o).second) {
        const rdf::Term& cls = dict.term(t.o);
        if (cls.is_iri()) classes.emplace(cls.lexical, t.o);
      }
    }
  }
  if (classes.empty()) {
    return Status::InvalidArgument("no classes found in data graph");
  }

  ShapesGraph shapes;
  for (const auto& [cls_iri, cls_id] : classes) {
    NodeShape ns;
    ns.iri = options.shape_namespace + dict.Pretty(cls_id) + "Shape";
    ns.target_class = cls_iri;

    // Predicates used by instances of this class, with object samples.
    struct PredInfo {
      uint64_t instances_with = 0;  // instances having >= 1 such triple
      bool objects_all_literals = true;
      bool objects_all_iris = true;
      std::string common_datatype;   // "" until first literal; "-" if mixed
      rdf::TermId common_class = rdf::kInvalidTermId;  // 0 until first; ~0 mixed
    };
    std::map<std::string, PredInfo> preds;  // keyed by predicate IRI
    uint64_t num_instances = 0;
    for (const rdf::Triple& inst : data.Match(std::nullopt, *type, cls_id)) {
      ++num_instances;
      std::set<rdf::TermId> seen_preds;
      for (const rdf::Triple& t : data.Match(inst.s, std::nullopt, std::nullopt)) {
        if (t.p == *type) continue;
        const rdf::Term& pred = dict.term(t.p);
        PredInfo& info = preds[pred.lexical];
        if (seen_preds.insert(t.p).second) ++info.instances_with;
        const rdf::Term& obj = dict.term(t.o);
        if (obj.is_literal()) {
          info.objects_all_iris = false;
          std::string dt =
              obj.datatype.empty() ? std::string(vocab::kXsdString) : obj.datatype;
          if (info.common_datatype.empty()) {
            info.common_datatype = dt;
          } else if (info.common_datatype != dt) {
            info.common_datatype = "-";
          }
        } else {
          info.objects_all_literals = false;
          auto obj_types = data.Match(t.o, *type, std::nullopt);
          rdf::TermId obj_cls =
              obj_types.empty() ? static_cast<rdf::TermId>(~0u) : obj_types.front().o;
          if (info.common_class == rdf::kInvalidTermId) {
            info.common_class = obj_cls;
          } else if (info.common_class != obj_cls) {
            info.common_class = static_cast<rdf::TermId>(~0u);
          }
        }
      }
    }

    for (const auto& [pred_iri, info] : preds) {
      PropertyShape ps;
      ps.iri = ns.iri + "-" + pred_iri.substr(pred_iri.find_last_of("#/") + 1);
      ps.path = pred_iri;
      if (options.infer_datatype && info.objects_all_literals &&
          !info.common_datatype.empty() && info.common_datatype != "-") {
        ps.datatype = info.common_datatype;
      }
      if (options.infer_object_class && info.objects_all_iris &&
          info.common_class != rdf::kInvalidTermId &&
          info.common_class != static_cast<rdf::TermId>(~0u)) {
        ps.node_class = dict.term(info.common_class).lexical;
      }
      if (options.emit_min_count && info.instances_with == num_instances) {
        ps.min_count = 1;
      }
      ns.properties.push_back(std::move(ps));
    }
    RETURN_NOT_OK(shapes.Add(std::move(ns)));
  }
  return shapes;
}

}  // namespace shapestats::shacl
