// Serialization of shapes graphs to and from Turtle. The written form
// matches Figure 3 of the paper: node shapes with sh:targetClass and
// sh:property-linked anonymous property shapes; annotated statistics are
// emitted as sh:count / sh:minCount / sh:maxCount / sh:distinctCount.
#pragma once

#include <string>

#include "rdf/graph.h"
#include "shacl/shapes.h"
#include "util/status.h"

namespace shapestats::shacl {

/// Renders a shapes graph as Turtle.
std::string WriteShapesTurtle(const ShapesGraph& shapes);

/// Parses a shapes graph from Turtle text.
Result<ShapesGraph> ReadShapesTurtle(std::string_view text);

/// Extracts a shapes graph from an already-parsed RDF graph (which must be
/// finalized). Recognizes sh:NodeShape resources, sh:targetClass,
/// sh:property links, and the statistics attributes.
Result<ShapesGraph> ShapesFromRdf(const rdf::Graph& graph);

}  // namespace shapestats::shacl
