// SHACL shapes object model (Definition 3.3) plus the paper's statistics
// extension (Section 5): node shapes carry sh:count, property shapes carry
// sh:count / sh:minCount / sh:maxCount / sh:distinctCount once annotated.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace shapestats::shacl {

/// A property shape: constraints + optional statistics for the triples
/// (s, path, o) where s is an instance of the owning node shape's target
/// class.
struct PropertyShape {
  std::string iri;        // IRI of the shape resource itself
  std::string path;       // sh:path — the target predicate (injective targetP)
  std::string node_class; // sh:class — objects are instances of this class
  std::string datatype;   // sh:datatype — objects are literals of this type

  // Constraint bounds as authored (validation semantics). The annotator
  // overwrites them with the observed min/max (statistics semantics).
  std::optional<uint64_t> min_count;
  std::optional<uint64_t> max_count;

  // --- statistics extension (dark boxes in Figure 3) ---
  std::optional<uint64_t> count;           // sh:count: matching triples
  std::optional<uint64_t> distinct_count;  // sh:distinctCount: distinct objects

  bool annotated() const { return count.has_value(); }
};

/// A node shape targeting one class, owning a set of property shapes
/// (the function phi of Definition 3.3).
struct NodeShape {
  std::string iri;
  std::string target_class;  // sh:targetClass (injective targetS)
  std::optional<uint64_t> count;  // sh:count: instances of target_class
  std::vector<PropertyShape> properties;

  bool annotated() const { return count.has_value(); }

  const PropertyShape* FindProperty(std::string_view path) const;
};

/// A shapes graph: node shapes with class- and path-based lookup.
class ShapesGraph {
 public:
  /// Adds a node shape. Fails if a shape already targets the same class
  /// (targetS must be injective per Definition 3.3).
  Status Add(NodeShape shape);

  const std::vector<NodeShape>& shapes() const { return shapes_; }
  size_t NumNodeShapes() const { return shapes_.size(); }
  size_t NumPropertyShapes() const;

  /// Node shape whose sh:targetClass is `cls`, or nullptr.
  const NodeShape* FindByClass(std::string_view cls) const;

  /// Property shape for predicate `path` under the node shape of `cls`,
  /// or nullptr.
  const PropertyShape* FindProperty(std::string_view cls,
                                    std::string_view path) const;

  /// All node shapes owning a property shape with the given path
  /// (candidate shapes for a triple pattern keyed by predicate, Section 6.1).
  std::vector<const NodeShape*> CandidatesForPath(std::string_view path) const;

  /// True if every node and property shape carries statistics.
  bool FullyAnnotated() const;

  /// Mutable access for the annotator.
  std::vector<NodeShape>* mutable_shapes() { return &shapes_; }

 private:
  std::vector<NodeShape> shapes_;
  std::unordered_map<std::string, size_t> by_class_;
};

}  // namespace shapestats::shacl
