// SHACL validation — the substrate use-case the shapes originally serve
// (Section 1: "they are currently only used for validation purposes").
// Checks sh:minCount / sh:maxCount / sh:class / sh:datatype constraints of
// every node shape against a data graph.
#pragma once

#include <string>
#include <vector>

#include "rdf/graph.h"
#include "shacl/shapes.h"
#include "util/status.h"

namespace shapestats::shacl {

enum class ViolationKind {
  kMinCount,
  kMaxCount,
  kClass,
  kDatatype,
};

const char* ViolationKindName(ViolationKind kind);

/// One constraint violation: focus node + violated property shape.
struct Violation {
  ViolationKind kind;
  std::string focus_node;  // IRI/blank label of the failing instance
  std::string shape_iri;   // property shape
  std::string path;        // predicate
  std::string detail;      // human-readable explanation
};

struct ValidationReport {
  bool conforms = true;
  std::vector<Violation> violations;
  uint64_t focus_nodes_checked = 0;

  std::string ToString(size_t max_violations = 20) const;
};

struct ValidatorOptions {
  /// Stop after this many violations (0 = unlimited).
  size_t max_violations = 0;
};

/// Validates `data` against `shapes`.
Result<ValidationReport> Validate(const rdf::Graph& data, const ShapesGraph& shapes,
                                  const ValidatorOptions& options = {});

}  // namespace shapestats::shacl
