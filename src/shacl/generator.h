// Shape generation from data (the paper uses the SHACLGEN library for
// datasets that ship without shapes, e.g. YAGO-4; this is the C++
// equivalent). Produces un-annotated shapes: one node shape per class in
// the data, one property shape per predicate used by instances of that
// class, with sh:class / sh:datatype inferred when the objects are uniform.
#pragma once

#include "rdf/graph.h"
#include "shacl/shapes.h"
#include "util/status.h"

namespace shapestats::shacl {

struct GeneratorOptions {
  /// Namespace for generated shape IRIs.
  std::string shape_namespace = "http://shapestats.org/shapes#";
  /// Infer sh:class when all sampled objects of a predicate share one type.
  bool infer_object_class = true;
  /// Infer sh:datatype when all sampled objects are literals of one type.
  bool infer_datatype = true;
  /// Emit sh:minCount 1 when every instance has the predicate.
  bool emit_min_count = true;
};

/// Generates a shapes graph from a finalized data graph.
Result<ShapesGraph> GenerateShapes(const rdf::Graph& data,
                                   const GeneratorOptions& options = {});

}  // namespace shapestats::shacl
