#include "shacl/shapes_io.h"

#include <algorithm>
#include <charconv>

#include "rdf/turtle.h"
#include "rdf/vocab.h"

namespace shapestats::shacl {

namespace vocab = rdf::vocab;

std::string WriteShapesTurtle(const ShapesGraph& shapes) {
  std::string out;
  out += "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\n";
  auto emit_count = [&out](const char* attr, const std::optional<uint64_t>& v,
                           const char* indent) {
    if (v) {
      out += indent;
      out += attr;
      // Appended piecewise: gcc 12's -Wrestrict false-fires on
      // operator+(const char*, std::string&&) under -O2.
      out += ' ';
      out += std::to_string(*v);
      out += " ;\n";
    }
  };
  for (const NodeShape& ns : shapes.shapes()) {
    out += "<" + ns.iri + "> a sh:NodeShape ;\n";
    out += "    sh:targetClass <" + ns.target_class + "> ;\n";
    emit_count("sh:count", ns.count, "    ");
    for (size_t i = 0; i < ns.properties.size(); ++i) {
      const PropertyShape& ps = ns.properties[i];
      out += "    sh:property [\n";
      out += "        sh:path <" + ps.path + "> ;\n";
      if (!ps.node_class.empty()) {
        out += "        sh:class <" + ps.node_class + "> ;\n";
      }
      if (!ps.datatype.empty()) {
        out += "        sh:datatype <" + ps.datatype + "> ;\n";
      }
      emit_count("sh:minCount", ps.min_count, "        ");
      emit_count("sh:maxCount", ps.max_count, "        ");
      emit_count("sh:count", ps.count, "        ");
      emit_count("sh:distinctCount", ps.distinct_count, "        ");
      // Remove the trailing " ;\n" of the last inner attribute.
      if (out.size() >= 2 && out[out.size() - 2] == ';') {
        out.erase(out.size() - 2, 1);
      }
      out += "    ]";
      out += " ;\n";
    }
    // Terminate the node shape statement.
    if (out.size() >= 2 && out[out.size() - 2] == ';') {
      out[out.size() - 2] = '.';
    }
    out += "\n";
  }
  return out;
}

namespace {

// Reads the single object of (s, p, ?) as an IRI string; empty if absent.
std::string ObjectIri(const rdf::Graph& g, rdf::TermId s, rdf::TermId p) {
  auto span = g.Match(s, p, std::nullopt);
  if (span.empty()) return "";
  const rdf::Term& t = g.dict().term(span.front().o);
  return t.is_iri() ? t.lexical : "";
}

// Reads the single object of (s, p, ?) as an integer literal.
std::optional<uint64_t> ObjectInt(const rdf::Graph& g, rdf::TermId s,
                                  rdf::TermId p) {
  auto span = g.Match(s, p, std::nullopt);
  if (span.empty()) return std::nullopt;
  const rdf::Term& t = g.dict().term(span.front().o);
  if (!t.is_literal()) return std::nullopt;
  uint64_t v = 0;
  auto [ptr, ec] =
      std::from_chars(t.lexical.data(), t.lexical.data() + t.lexical.size(), v);
  if (ec != std::errc() || ptr != t.lexical.data() + t.lexical.size()) {
    return std::nullopt;
  }
  return v;
}

}  // namespace

Result<ShapesGraph> ShapesFromRdf(const rdf::Graph& g) {
  if (!g.finalized()) {
    return Status::InvalidArgument("shapes RDF graph must be finalized");
  }
  const rdf::TermDictionary& dict = g.dict();
  auto need = [&](std::string_view iri) { return dict.FindIri(iri); };
  auto type = need(vocab::kRdfType);
  auto node_shape_cls = need(vocab::kShNodeShape);
  if (!type || !node_shape_cls) {
    return Status::InvalidArgument("graph contains no sh:NodeShape resources");
  }
  auto target_class = need(vocab::kShTargetClass);
  auto property = need(vocab::kShProperty);
  auto path = need(vocab::kShPath);
  auto sh_class = need(vocab::kShClass);
  auto sh_datatype = need(vocab::kShDatatype);
  auto min_count = need(vocab::kShMinCount);
  auto max_count = need(vocab::kShMaxCount);
  auto count = need(vocab::kShCount);
  auto distinct_count = need(vocab::kShDistinctCount);

  ShapesGraph shapes;
  for (const rdf::Triple& t : g.Match(std::nullopt, *type, *node_shape_cls)) {
    NodeShape ns;
    const rdf::Term& subject = dict.term(t.s);
    ns.iri = subject.is_iri() ? subject.lexical : ("_:" + subject.lexical);
    if (!target_class) {
      return Status::ParseError("node shape without sh:targetClass: " + ns.iri);
    }
    ns.target_class = ObjectIri(g, t.s, *target_class);
    if (ns.target_class.empty()) {
      return Status::ParseError("node shape without sh:targetClass: " + ns.iri);
    }
    if (count) ns.count = ObjectInt(g, t.s, *count);
    if (property) {
      for (const rdf::Triple& link : g.Match(t.s, *property, std::nullopt)) {
        PropertyShape ps;
        const rdf::Term& shape_node = dict.term(link.o);
        ps.iri = shape_node.is_iri() ? shape_node.lexical
                                     : ("_:" + shape_node.lexical);
        if (path) ps.path = ObjectIri(g, link.o, *path);
        if (ps.path.empty()) {
          return Status::ParseError("property shape without sh:path under " +
                                    ns.iri);
        }
        if (sh_class) ps.node_class = ObjectIri(g, link.o, *sh_class);
        if (sh_datatype) ps.datatype = ObjectIri(g, link.o, *sh_datatype);
        if (min_count) ps.min_count = ObjectInt(g, link.o, *min_count);
        if (max_count) ps.max_count = ObjectInt(g, link.o, *max_count);
        if (count) ps.count = ObjectInt(g, link.o, *count);
        if (distinct_count) ps.distinct_count = ObjectInt(g, link.o, *distinct_count);
        ns.properties.push_back(std::move(ps));
      }
    }
    // Deterministic order regardless of index order.
    std::sort(ns.properties.begin(), ns.properties.end(),
              [](const PropertyShape& a, const PropertyShape& b) {
                return a.path < b.path;
              });
    RETURN_NOT_OK(shapes.Add(std::move(ns)));
  }
  if (shapes.NumNodeShapes() == 0) {
    return Status::InvalidArgument("graph contains no sh:NodeShape resources");
  }
  return shapes;
}

Result<ShapesGraph> ReadShapesTurtle(std::string_view text) {
  rdf::Graph g;
  RETURN_NOT_OK(rdf::ParseTurtle(text, &g));
  g.Finalize();
  return ShapesFromRdf(g);
}

}  // namespace shapestats::shacl
