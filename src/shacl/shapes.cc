#include "shacl/shapes.h"

namespace shapestats::shacl {

const PropertyShape* NodeShape::FindProperty(std::string_view path) const {
  for (const PropertyShape& ps : properties) {
    if (ps.path == path) return &ps;
  }
  return nullptr;
}

Status ShapesGraph::Add(NodeShape shape) {
  if (by_class_.count(shape.target_class)) {
    return Status::AlreadyExists("a node shape already targets class " +
                                 shape.target_class);
  }
  by_class_.emplace(shape.target_class, shapes_.size());
  shapes_.push_back(std::move(shape));
  return Status::OK();
}

size_t ShapesGraph::NumPropertyShapes() const {
  size_t n = 0;
  for (const NodeShape& s : shapes_) n += s.properties.size();
  return n;
}

const NodeShape* ShapesGraph::FindByClass(std::string_view cls) const {
  auto it = by_class_.find(std::string(cls));
  if (it == by_class_.end()) return nullptr;
  return &shapes_[it->second];
}

const PropertyShape* ShapesGraph::FindProperty(std::string_view cls,
                                               std::string_view path) const {
  const NodeShape* ns = FindByClass(cls);
  return ns ? ns->FindProperty(path) : nullptr;
}

std::vector<const NodeShape*> ShapesGraph::CandidatesForPath(
    std::string_view path) const {
  std::vector<const NodeShape*> out;
  for (const NodeShape& s : shapes_) {
    if (s.FindProperty(path) != nullptr) out.push_back(&s);
  }
  return out;
}

bool ShapesGraph::FullyAnnotated() const {
  for (const NodeShape& s : shapes_) {
    if (!s.annotated()) return false;
    for (const PropertyShape& ps : s.properties) {
      if (!ps.annotated()) return false;
    }
  }
  return !shapes_.empty();
}

}  // namespace shapestats::shacl
