#include "shacl/validator.h"

#include "rdf/vocab.h"

namespace shapestats::shacl {

namespace vocab = rdf::vocab;

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kMinCount: return "MinCount";
    case ViolationKind::kMaxCount: return "MaxCount";
    case ViolationKind::kClass: return "Class";
    case ViolationKind::kDatatype: return "Datatype";
  }
  return "?";
}

std::string ValidationReport::ToString(size_t max_violations) const {
  std::string out = conforms ? "conforms" : "does not conform";
  out += " (" + std::to_string(focus_nodes_checked) + " focus nodes, " +
         std::to_string(violations.size()) + " violations)\n";
  size_t shown = 0;
  for (const Violation& v : violations) {
    if (max_violations && shown++ >= max_violations) {
      out += "  ...\n";
      break;
    }
    out += std::string("  [") + ViolationKindName(v.kind) + "] " + v.focus_node +
           " " + v.path + ": " + v.detail + "\n";
  }
  return out;
}

Result<ValidationReport> Validate(const rdf::Graph& data, const ShapesGraph& shapes,
                                  const ValidatorOptions& options) {
  if (!data.finalized()) {
    return Status::InvalidArgument("data graph must be finalized");
  }
  const rdf::TermDictionary& dict = data.dict();
  auto type = dict.FindIri(vocab::kRdfType);
  ValidationReport report;
  auto add = [&](Violation v) {
    report.conforms = false;
    if (!options.max_violations ||
        report.violations.size() < options.max_violations) {
      report.violations.push_back(std::move(v));
    }
  };

  for (const NodeShape& ns : shapes.shapes()) {
    if (!type) break;
    auto cls = dict.FindIri(ns.target_class);
    if (!cls) continue;  // class absent from data: vacuously conforms
    for (const rdf::Triple& inst : data.Match(std::nullopt, *type, *cls)) {
      ++report.focus_nodes_checked;
      std::string focus = dict.Pretty(inst.s);
      for (const PropertyShape& ps : ns.properties) {
        auto pred = dict.FindIri(ps.path);
        uint64_t n = pred ? data.CountMatches(inst.s, *pred, std::nullopt) : 0;
        if (ps.min_count && n < *ps.min_count) {
          add({ViolationKind::kMinCount, focus, ps.iri, ps.path,
               "has " + std::to_string(n) + " values, needs >= " +
                   std::to_string(*ps.min_count)});
        }
        if (ps.max_count && n > *ps.max_count) {
          add({ViolationKind::kMaxCount, focus, ps.iri, ps.path,
               "has " + std::to_string(n) + " values, allows <= " +
                   std::to_string(*ps.max_count)});
        }
        if (!pred || n == 0) continue;
        if (!ps.node_class.empty()) {
          auto want = dict.FindIri(ps.node_class);
          for (const rdf::Triple& t : data.Match(inst.s, *pred, std::nullopt)) {
            bool ok = want && data.Contains(t.o, *type, *want);
            if (!ok) {
              add({ViolationKind::kClass, focus, ps.iri, ps.path,
                   dict.Pretty(t.o) + " is not an instance of " + ps.node_class});
            }
          }
        }
        if (!ps.datatype.empty()) {
          for (const rdf::Triple& t : data.Match(inst.s, *pred, std::nullopt)) {
            const rdf::Term& obj = dict.term(t.o);
            std::string dt = obj.is_literal()
                                 ? (obj.datatype.empty() ? std::string(vocab::kXsdString)
                                                         : obj.datatype)
                                 : "";
            if (dt != ps.datatype) {
              add({ViolationKind::kDatatype, focus, ps.iri, ps.path,
                   "object is not a literal of " + ps.datatype});
            }
          }
        }
      }
    }
  }
  return report;
}

}  // namespace shapestats::shacl
