// LUBM-style synthetic data generator (Guo, Pan & Heflin — ref [10]).
// Faithful to the LUBM schema (universities, departments, faculty ranks,
// courses, students, publications, and the univ-bench predicate
// vocabulary) but scaled down: the paper uses LUBM-500 with 91 M triples;
// the default configuration here produces a structurally equivalent graph
// at laptop scale. Entity ratios follow the LUBM generator's published
// ranges, so relative cardinalities and correlations (e.g. advisor only on
// students, teacherOf only on faculty) are preserved.
#pragma once

#include "rdf/graph.h"

namespace shapestats::datagen {

/// univ-bench namespace for classes and predicates.
inline constexpr const char* kUbNs =
    "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

struct LubmOptions {
  uint32_t universities = 10;
  uint64_t seed = 7;
};

/// Generates and finalizes a LUBM-style graph.
rdf::Graph GenerateLubm(const LubmOptions& options = {});

}  // namespace shapestats::datagen
