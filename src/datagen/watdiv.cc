#include "datagen/watdiv.h"

#include <string>
#include <vector>

#include "rdf/vocab.h"
#include "util/random.h"

namespace shapestats::datagen {

rdf::Graph GenerateWatDiv(const WatDivOptions& options) {
  rdf::Graph g;
  rdf::TermDictionary& d = g.dict();
  Rng rng(options.seed);

  auto wsdbm = [&](const std::string& local) {
    return d.InternIri(std::string(kWsdbmNs) + local);
  };
  auto sorg = [&](const std::string& local) {
    return d.InternIri(std::string(kSorgNs) + local);
  };
  auto rev = [&](const std::string& local) {
    return d.InternIri(std::string(kRevNs) + local);
  };
  auto literal = [&](const std::string& s) { return d.InternLiteral(s); };

  rdf::TermId type = d.InternIri(rdf::vocab::kRdfType);
  // classes
  rdf::TermId c_product = wsdbm("Product");
  rdf::TermId c_user = wsdbm("User");
  rdf::TermId c_retailer = wsdbm("Retailer");
  rdf::TermId c_review = wsdbm("Review");
  rdf::TermId c_offer = wsdbm("Offer");
  rdf::TermId c_city = wsdbm("City");
  rdf::TermId c_country = wsdbm("Country");
  rdf::TermId c_genre = wsdbm("Genre");
  // predicates
  rdf::TermId p_has_genre = wsdbm("hasGenre");
  rdf::TermId p_caption = sorg("caption");
  rdf::TermId p_description = sorg("description");
  rdf::TermId p_content_rating = sorg("contentRating");
  rdf::TermId p_price = sorg("price");
  rdf::TermId p_likes = wsdbm("likes");
  rdf::TermId p_follows = wsdbm("follows");
  rdf::TermId p_friend_of = wsdbm("friendOf");
  rdf::TermId p_gender = wsdbm("gender");
  rdf::TermId p_age = sorg("age");
  rdf::TermId p_nationality = sorg("nationality");
  rdf::TermId p_located_in = wsdbm("locatedIn");
  rdf::TermId p_reviewer = rev("reviewer");
  rdf::TermId p_review_for = rev("reviewFor");
  rdf::TermId p_rating = rev("ratingValue");
  rdf::TermId p_title = rev("title");
  rdf::TermId p_offer_for = wsdbm("offerFor");
  rdf::TermId p_seller = wsdbm("seller");
  rdf::TermId p_valid_through = sorg("validThrough");
  rdf::TermId p_legal_name = sorg("legalName");
  rdf::TermId p_homepage = sorg("homepage");

  const uint32_t num_products = options.products;
  const uint32_t num_users = options.products * 2;
  const uint32_t num_reviews = options.products * 3 / 2;
  const uint32_t num_offers = options.products;
  const uint32_t num_retailers = std::max<uint32_t>(20, options.products / 200);
  const uint32_t num_countries = 25;
  const uint32_t num_cities = 240;
  const uint32_t num_genres = 21;

  std::vector<rdf::TermId> countries, cities, genres, products, users, retailers;

  for (uint32_t i = 0; i < num_countries; ++i) {
    rdf::TermId c = wsdbm("Country" + std::to_string(i));
    g.Add(c, type, c_country);
    countries.push_back(c);
  }
  for (uint32_t i = 0; i < num_cities; ++i) {
    rdf::TermId c = wsdbm("City" + std::to_string(i));
    g.Add(c, type, c_city);
    g.Add(c, p_located_in, countries[rng.Uniform(0, num_countries - 1)]);
    cities.push_back(c);
  }
  for (uint32_t i = 0; i < num_genres; ++i) {
    rdf::TermId c = wsdbm("Genre" + std::to_string(i));
    g.Add(c, type, c_genre);
    genres.push_back(c);
  }
  for (uint32_t i = 0; i < num_retailers; ++i) {
    rdf::TermId r = wsdbm("Retailer" + std::to_string(i));
    g.Add(r, type, c_retailer);
    g.Add(r, p_legal_name, literal("Retailer " + std::to_string(i)));
    if (rng.Chance(0.8)) {
      g.Add(r, p_homepage, literal("http://retailer" + std::to_string(i) + ".example"));
    }
    retailers.push_back(r);
  }

  for (uint32_t i = 0; i < num_products; ++i) {
    rdf::TermId p = wsdbm("Product" + std::to_string(i));
    g.Add(p, type, c_product);
    g.Add(p, p_caption, literal("Product caption " + std::to_string(i)));
    if (rng.Chance(0.55)) {
      g.Add(p, p_description, literal("Description " + std::to_string(i)));
    }
    uint64_t ngenres = rng.Uniform(1, 2);
    for (uint64_t k = 0; k < ngenres; ++k) {
      // Genre popularity is Zipf-distributed.
      g.Add(p, p_has_genre, genres[rng.Zipf(num_genres, 1.1)]);
    }
    g.Add(p, p_price, d.Intern(rdf::Term::IntLiteral(
                          static_cast<int64_t>(rng.Uniform(1, 5000)))));
    if (rng.Chance(0.3)) {
      g.Add(p, p_content_rating, literal("Rating" + std::to_string(rng.Uniform(1, 5))));
    }
    products.push_back(p);
  }

  // Product popularity ranks for review/like targets (power-law).
  auto popular_product = [&]() {
    return products[rng.Zipf(num_products, 1.05)];
  };

  for (uint32_t i = 0; i < num_users; ++i) {
    rdf::TermId u = wsdbm("User" + std::to_string(i));
    g.Add(u, type, c_user);
    g.Add(u, p_gender, literal(rng.Chance(0.5) ? "male" : "female"));
    if (rng.Chance(0.7)) {
      g.Add(u, p_age, d.Intern(rdf::Term::IntLiteral(
                          static_cast<int64_t>(rng.Uniform(16, 80)))));
    }
    g.Add(u, p_nationality, countries[rng.Zipf(num_countries, 1.0)]);
    // Social edges: heavy-tailed out-degree.
    uint64_t follows = rng.Zipf(30, 1.3);
    for (uint64_t k = 0; k < follows; ++k) {
      g.Add(u, p_follows, wsdbm("User" + std::to_string(rng.Zipf(num_users, 1.05))));
    }
    uint64_t friends = rng.Zipf(12, 1.4);
    for (uint64_t k = 0; k < friends; ++k) {
      g.Add(u, p_friend_of,
            wsdbm("User" + std::to_string(rng.Uniform(0, num_users - 1))));
    }
    uint64_t likes = rng.Zipf(10, 1.2);
    for (uint64_t k = 0; k < likes; ++k) {
      g.Add(u, p_likes, popular_product());
    }
    users.push_back(u);
  }

  for (uint32_t i = 0; i < num_reviews; ++i) {
    rdf::TermId r = wsdbm("Review" + std::to_string(i));
    g.Add(r, type, c_review);
    g.Add(r, p_reviewer, users[rng.Zipf(num_users, 1.05)]);
    g.Add(r, p_review_for, popular_product());
    g.Add(r, p_rating, d.Intern(rdf::Term::IntLiteral(
                           static_cast<int64_t>(rng.Uniform(1, 10)))));
    if (rng.Chance(0.6)) {
      g.Add(r, p_title, literal("Review title " + std::to_string(i)));
    }
  }

  for (uint32_t i = 0; i < num_offers; ++i) {
    rdf::TermId o = wsdbm("Offer" + std::to_string(i));
    g.Add(o, type, c_offer);
    g.Add(o, p_offer_for, popular_product());
    g.Add(o, p_seller, retailers[rng.Zipf(num_retailers, 1.1)]);
    g.Add(o, p_price, d.Intern(rdf::Term::IntLiteral(
                          static_cast<int64_t>(rng.Uniform(1, 5000)))));
    if (rng.Chance(0.6)) {
      g.Add(o, p_valid_through, literal("2026-" +
                                        std::to_string(rng.Uniform(1, 12)) + "-01"));
    }
  }

  g.Finalize();
  return g;
}

}  // namespace shapestats::datagen
