#include "datagen/yago.h"

#include <string>
#include <vector>

#include "rdf/vocab.h"
#include "util/random.h"

namespace shapestats::datagen {

namespace {

/// Per-class predicate profile used for the random (tail) classes.
struct PredProfile {
  rdf::TermId pred;
  double presence;        // probability an instance has the predicate
  uint64_t max_mult;      // 1..max_mult triples when present
  bool literal_object;    // literal vs entity link
  uint32_t target_class;  // for entity links: tail class of the object
  uint32_t literal_pool;  // for literals: number of distinct values
};

}  // namespace

// The generator produces two strata, mirroring YAGO-4's structure:
//
// 1. An *anchor* stratum with a fixed schema.org-like backbone (Person,
//    Actor, Movie, Organization, City, Country, Book) and deterministic
//    predicate profiles. The benchmark queries (workload/yago_queries)
//    target this stratum, so they are stable across seeds.
// 2. A *heterogeneous tail* of `num_classes` random classes with Zipf
//    sizes and random predicate profiles over a shared vocabulary — the
//    source of YAGO's thousands of node/property shapes.
rdf::Graph GenerateYago(const YagoOptions& options) {
  rdf::Graph g;
  rdf::TermDictionary& d = g.dict();
  Rng rng(options.seed);

  rdf::TermId type = d.InternIri(rdf::vocab::kRdfType);
  rdf::TermId label = d.InternIri(rdf::vocab::kRdfsLabel);
  auto schema = [&](const std::string& local) {
    return d.InternIri(std::string(kSchemaNs) + local);
  };
  auto entity_iri = [&](const std::string& name) {
    return d.InternIri(std::string(kYagoNs) + name);
  };
  auto literal = [&](const std::string& s) { return d.InternLiteral(s); };

  // ---------------------------------------------------------------- anchors
  rdf::TermId c_person = schema("Person");
  rdf::TermId c_actor = schema("Actor");
  rdf::TermId c_movie = schema("Movie");
  rdf::TermId c_organization = schema("Organization");
  rdf::TermId c_city = schema("City");
  rdf::TermId c_country = schema("Country");
  rdf::TermId c_book = schema("Book");

  rdf::TermId p_birth_place = schema("birthPlace");
  rdf::TermId p_works_for = schema("worksFor");
  rdf::TermId p_spouse = schema("spouse");
  rdf::TermId p_knows = schema("knows");
  rdf::TermId p_acted_in = schema("actedIn");
  rdf::TermId p_director = schema("director");
  rdf::TermId p_duration = schema("duration");
  rdf::TermId p_date_published = schema("datePublished");
  rdf::TermId p_location = schema("location");
  rdf::TermId p_num_employees = schema("numberOfEmployees");
  rdf::TermId p_located_in = schema("containedInPlace");
  rdf::TermId p_population = schema("populationNumber");
  rdf::TermId p_author = schema("author");
  rdf::TermId p_publisher = schema("publisher");
  rdf::TermId p_num_pages = schema("numberOfPages");
  rdf::TermId p_award = schema("award");

  const uint32_t n = options.num_entities;
  const uint32_t num_persons = n * 28 / 100;
  const uint32_t num_actors = n * 5 / 100;
  const uint32_t num_movies = n * 8 / 100;
  const uint32_t num_orgs = n * 7 / 100;
  const uint32_t num_cities = std::max<uint32_t>(50, n * 2 / 100);
  const uint32_t num_countries = 60;
  const uint32_t num_books = n * 6 / 100;

  std::vector<rdf::TermId> countries, cities, persons, actors, movies, orgs;

  for (uint32_t i = 0; i < num_countries; ++i) {
    rdf::TermId c = entity_iri("Country" + std::to_string(i));
    g.Add(c, type, c_country);
    g.Add(c, label, literal("Country " + std::to_string(i)));
    g.Add(c, p_population, d.Intern(rdf::Term::IntLiteral(
                               static_cast<int64_t>(rng.Uniform(100000, 99999999)))));
    countries.push_back(c);
  }
  for (uint32_t i = 0; i < num_cities; ++i) {
    rdf::TermId c = entity_iri("City" + std::to_string(i));
    g.Add(c, type, c_city);
    g.Add(c, label, literal("City " + std::to_string(i)));
    g.Add(c, p_located_in, countries[rng.Zipf(num_countries, 1.1)]);
    if (rng.Chance(0.8)) {
      g.Add(c, p_population, d.Intern(rdf::Term::IntLiteral(
                                 static_cast<int64_t>(rng.Uniform(1000, 9999999)))));
    }
    cities.push_back(c);
  }
  for (uint32_t i = 0; i < num_orgs; ++i) {
    rdf::TermId o = entity_iri("Org" + std::to_string(i));
    g.Add(o, type, c_organization);
    g.Add(o, label, literal("Organization " + std::to_string(i)));
    g.Add(o, p_location, cities[rng.Zipf(cities.size(), 1.05)]);
    if (rng.Chance(0.6)) {
      g.Add(o, p_num_employees, d.Intern(rdf::Term::IntLiteral(
                                    static_cast<int64_t>(rng.Uniform(3, 200000)))));
    }
    orgs.push_back(o);
  }
  for (uint32_t i = 0; i < num_persons; ++i) {
    rdf::TermId p = entity_iri("Person" + std::to_string(i));
    g.Add(p, type, c_person);
    g.Add(p, label, literal("Person " + std::to_string(i)));
    if (rng.Chance(0.85)) {
      g.Add(p, p_birth_place, cities[rng.Zipf(cities.size(), 1.1)]);
    }
    if (rng.Chance(0.4)) g.Add(p, p_works_for, orgs[rng.Zipf(orgs.size(), 1.05)]);
    if (rng.Chance(0.2)) {
      g.Add(p, p_spouse,
            entity_iri("Person" + std::to_string(rng.Uniform(0, num_persons - 1))));
    }
    uint64_t knows = rng.Zipf(8, 1.3);
    for (uint64_t k = 0; k < knows; ++k) {
      g.Add(p, p_knows,
            entity_iri("Person" + std::to_string(rng.Zipf(num_persons, 1.05))));
    }
    persons.push_back(p);
  }
  for (uint32_t i = 0; i < num_actors; ++i) {
    rdf::TermId a = entity_iri("Actor" + std::to_string(i));
    g.Add(a, type, c_actor);
    // Actors are persons too (YAGO multityping).
    g.Add(a, type, c_person);
    g.Add(a, label, literal("Actor " + std::to_string(i)));
    if (rng.Chance(0.9)) {
      g.Add(a, p_birth_place, cities[rng.Zipf(cities.size(), 1.1)]);
    }
    if (rng.Chance(0.3)) {
      g.Add(a, p_award, literal("Award" + std::to_string(rng.Uniform(0, 40))));
    }
    actors.push_back(a);
  }
  for (uint32_t i = 0; i < num_movies; ++i) {
    rdf::TermId m = entity_iri("Movie" + std::to_string(i));
    g.Add(m, type, c_movie);
    g.Add(m, label, literal("Movie " + std::to_string(i)));
    g.Add(m, p_director, persons[rng.Zipf(persons.size(), 1.1)]);
    if (rng.Chance(0.7)) {
      g.Add(m, p_duration, d.Intern(rdf::Term::IntLiteral(
                               static_cast<int64_t>(rng.Uniform(60, 220)))));
    }
    if (rng.Chance(0.8)) {
      g.Add(m, p_date_published,
            literal(std::to_string(rng.Uniform(1930, 2026))));
    }
    movies.push_back(m);
  }
  // actedIn edges: actor -> movie, heavy-tailed per actor.
  for (uint32_t i = 0; i < num_actors; ++i) {
    uint64_t roles = 1 + rng.Zipf(12, 1.25);
    for (uint64_t k = 0; k < roles; ++k) {
      g.Add(actors[i], p_acted_in, movies[rng.Zipf(movies.size(), 1.05)]);
    }
  }
  for (uint32_t i = 0; i < num_books; ++i) {
    rdf::TermId b = entity_iri("Book" + std::to_string(i));
    g.Add(b, type, c_book);
    g.Add(b, label, literal("Book " + std::to_string(i)));
    uint64_t authors = rng.Uniform(1, 3);
    for (uint64_t k = 0; k < authors; ++k) {
      g.Add(b, p_author, persons[rng.Zipf(persons.size(), 1.15)]);
    }
    if (rng.Chance(0.7)) g.Add(b, p_publisher, orgs[rng.Zipf(orgs.size(), 1.1)]);
    if (rng.Chance(0.6)) {
      g.Add(b, p_num_pages, d.Intern(rdf::Term::IntLiteral(
                                static_cast<int64_t>(rng.Uniform(40, 1800)))));
    }
  }

  // ------------------------------------------------------ heterogeneous tail
  const uint32_t tail_entities =
      n - (num_persons + num_actors + num_movies + num_orgs + num_cities +
           num_countries + num_books);
  std::vector<rdf::TermId> classes;
  for (uint32_t c = 0; c < options.num_classes; ++c) {
    classes.push_back(schema("Class" + std::to_string(c)));
  }
  std::vector<rdf::TermId> predicates;
  for (uint32_t p = 0; p < options.num_predicates; ++p) {
    predicates.push_back(schema("prop" + std::to_string(p)));
  }
  std::vector<std::vector<PredProfile>> profiles(options.num_classes);
  for (uint32_t c = 0; c < options.num_classes; ++c) {
    uint64_t k = rng.Uniform(3, 10);
    std::vector<bool> used(options.num_predicates, false);
    for (uint64_t i = 0; i < k; ++i) {
      uint32_t p = static_cast<uint32_t>(rng.Zipf(options.num_predicates, 1.05));
      if (used[p]) continue;
      used[p] = true;
      PredProfile prof;
      prof.pred = predicates[p];
      prof.presence = 0.3 + rng.UniformReal() * 0.7;
      prof.max_mult = rng.Chance(0.25) ? rng.Uniform(2, 4) : 1;
      prof.literal_object = rng.Chance(0.5);
      prof.target_class = static_cast<uint32_t>(rng.Zipf(options.num_classes, 1.1));
      prof.literal_pool = static_cast<uint32_t>(rng.Uniform(5, 5000));
      profiles[c].push_back(prof);
    }
  }
  std::vector<uint32_t> class_of_entity(tail_entities);
  std::vector<std::vector<uint32_t>> tail_members(options.num_classes);
  for (uint32_t e = 0; e < tail_entities; ++e) {
    class_of_entity[e] = static_cast<uint32_t>(rng.Zipf(options.num_classes, 1.15));
    tail_members[class_of_entity[e]].push_back(e);
  }
  // Strings built via append throughout this loop: gcc 12's -Wrestrict
  // false-fires on operator+(const char*, std::string&&) under -O2.
  auto tail_iri = [&](uint32_t e) {
    std::string name = "T";
    name += std::to_string(e);
    return entity_iri(name);
  };
  for (uint32_t e = 0; e < tail_entities; ++e) {
    uint32_t c = class_of_entity[e];
    rdf::TermId subj = tail_iri(e);
    g.Add(subj, type, classes[c]);
    if (rng.Chance(0.12)) {
      uint32_t c2 = static_cast<uint32_t>(rng.Zipf(options.num_classes, 1.15));
      if (c2 != c) g.Add(subj, type, classes[c2]);
    }
    std::string label_value = "Entity ";
    label_value += std::to_string(e);
    g.Add(subj, label, literal(label_value));
    for (const PredProfile& prof : profiles[c]) {
      if (!rng.Chance(prof.presence)) continue;
      uint64_t mult = rng.Uniform(1, prof.max_mult);
      for (uint64_t m = 0; m < mult; ++m) {
        if (prof.literal_object) {
          std::string value = "v";
          value += std::to_string(rng.Uniform(0, prof.literal_pool - 1));
          g.Add(subj, prof.pred, literal(value));
        } else {
          const auto& pool = tail_members[prof.target_class];
          if (pool.empty()) continue;
          g.Add(subj, prof.pred, tail_iri(pool[rng.Zipf(pool.size(), 1.02)]));
        }
      }
    }
  }

  if (options.finalize) g.Finalize();
  return g;
}

}  // namespace shapestats::datagen
