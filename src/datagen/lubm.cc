#include "datagen/lubm.h"

#include <string>
#include <vector>

#include "rdf/vocab.h"
#include "util/random.h"

namespace shapestats::datagen {

namespace {

/// Interned vocabulary handles for one generation run.
struct Vocab {
  rdf::TermId type;
  // classes
  rdf::TermId university, department, full_professor, associate_professor,
      assistant_professor, lecturer, course, graduate_course,
      undergraduate_student, graduate_student, teaching_assistant, publication;
  // predicates
  rdf::TermId name, email, telephone, research_interest, works_for, member_of,
      head_of, teacher_of, takes_course, advisor, degree_from, publication_author,
      sub_organization_of;

  explicit Vocab(rdf::TermDictionary& d) {
    auto ub = [&](const char* local) {
      return d.InternIri(std::string(kUbNs) + local);
    };
    type = d.InternIri(rdf::vocab::kRdfType);
    university = ub("University");
    department = ub("Department");
    full_professor = ub("FullProfessor");
    associate_professor = ub("AssociateProfessor");
    assistant_professor = ub("AssistantProfessor");
    lecturer = ub("Lecturer");
    course = ub("Course");
    graduate_course = ub("GraduateCourse");
    undergraduate_student = ub("UndergraduateStudent");
    graduate_student = ub("GraduateStudent");
    teaching_assistant = ub("TeachingAssistant");
    publication = ub("Publication");
    name = ub("name");
    email = ub("emailAddress");
    telephone = ub("telephone");
    research_interest = ub("researchInterest");
    works_for = ub("worksFor");
    member_of = ub("memberOf");
    head_of = ub("headOf");
    teacher_of = ub("teacherOf");
    takes_course = ub("takesCourse");
    advisor = ub("advisor");
    degree_from = ub("degreeFrom");
    publication_author = ub("publicationAuthor");
    sub_organization_of = ub("subOrganizationOf");
  }
};

}  // namespace

rdf::Graph GenerateLubm(const LubmOptions& options) {
  rdf::Graph g;
  rdf::TermDictionary& d = g.dict();
  Vocab v(d);
  Rng rng(options.seed);

  // University pool: generated universities plus external ones that only
  // appear as degreeFrom targets (keeps DOC(degreeFrom) small and fixed,
  // like the 1000-university pool of real LUBM).
  std::vector<rdf::TermId> universities;
  uint32_t pool = options.universities * 4;
  for (uint32_t u = 0; u < pool; ++u) {
    rdf::TermId id = d.InternIri("http://www.University" + std::to_string(u) +
                                 ".edu");
    universities.push_back(id);
  }
  auto any_university = [&]() {
    return universities[rng.Uniform(0, universities.size() - 1)];
  };

  auto literal = [&](const std::string& s) { return d.InternLiteral(s); };

  for (uint32_t u = 0; u < options.universities; ++u) {
    rdf::TermId univ = universities[u];
    g.Add(univ, v.type, v.university);
    g.Add(univ, v.name, literal("University" + std::to_string(u)));

    uint64_t num_depts = rng.Uniform(10, 16);
    for (uint64_t dep = 0; dep < num_depts; ++dep) {
      std::string dept_ns = "http://www.Department" + std::to_string(dep) +
                            ".University" + std::to_string(u) + ".edu/";
      rdf::TermId dept = d.InternIri(dept_ns);
      g.Add(dept, v.type, v.department);
      g.Add(dept, v.name, literal("Department" + std::to_string(dep)));
      g.Add(dept, v.sub_organization_of, univ);

      struct FacultySpec {
        rdf::TermId cls;
        const char* prefix;
        uint64_t lo, hi;
      };
      const FacultySpec ranks[] = {
          {v.full_professor, "FullProfessor", 7, 10},
          {v.associate_professor, "AssociateProfessor", 10, 14},
          {v.assistant_professor, "AssistantProfessor", 8, 11},
          {v.lecturer, "Lecturer", 5, 7},
      };

      std::vector<rdf::TermId> faculty;
      std::vector<rdf::TermId> professors;  // advisor candidates
      std::vector<std::vector<rdf::TermId>> prof_grad_courses;
      std::vector<rdf::TermId> courses;
      std::vector<rdf::TermId> grad_courses;
      uint64_t course_counter = 0;

      for (const FacultySpec& spec : ranks) {
        uint64_t count = rng.Uniform(spec.lo, spec.hi);
        for (uint64_t i = 0; i < count; ++i) {
          rdf::TermId person =
              d.InternIri(dept_ns + spec.prefix + std::to_string(i));
          g.Add(person, v.type, spec.cls);
          g.Add(person, v.name,
                literal(std::string(spec.prefix) + std::to_string(i)));
          g.Add(person, v.email,
                literal(std::string(spec.prefix) + std::to_string(i) + "@" +
                        dept_ns));
          g.Add(person, v.telephone,
                literal("xxx-xxx-" + std::to_string(rng.Uniform(1000, 9999))));
          g.Add(person, v.works_for, dept);
          g.Add(person, v.degree_from, any_university());
          uint64_t interests = rng.Uniform(1, 2);
          for (uint64_t r = 0; r < interests; ++r) {
            g.Add(person, v.research_interest,
                  literal("Research" + std::to_string(rng.Uniform(0, 29))));
          }
          faculty.push_back(person);
          bool is_professor = spec.cls != v.lecturer;
          if (is_professor) professors.push_back(person);

          // Courses taught: 1-2 undergraduate, and professors also teach
          // 1-2 graduate courses.
          uint64_t undergrad_courses = rng.Uniform(1, 2);
          for (uint64_t c = 0; c < undergrad_courses; ++c) {
            rdf::TermId crs =
                d.InternIri(dept_ns + "Course" + std::to_string(course_counter++));
            g.Add(crs, v.type, v.course);
            g.Add(crs, v.name, literal("Course" + std::to_string(course_counter)));
            g.Add(person, v.teacher_of, crs);
            courses.push_back(crs);
          }
          if (is_professor) {
            std::vector<rdf::TermId> own_grad_courses;
            uint64_t gcount = rng.Uniform(1, 2);
            for (uint64_t c = 0; c < gcount; ++c) {
              rdf::TermId crs = d.InternIri(dept_ns + "GraduateCourse" +
                                            std::to_string(course_counter++));
              g.Add(crs, v.type, v.graduate_course);
              g.Add(crs, v.name,
                    literal("GraduateCourse" + std::to_string(course_counter)));
              g.Add(person, v.teacher_of, crs);
              grad_courses.push_back(crs);
              own_grad_courses.push_back(crs);
            }
            prof_grad_courses.push_back(std::move(own_grad_courses));
          }

          // Publications (faculty author 2-5 each).
          uint64_t pubs = rng.Uniform(2, 5);
          for (uint64_t pb = 0; pb < pubs; ++pb) {
            rdf::TermId pub = d.InternIri(dept_ns + spec.prefix +
                                          std::to_string(i) + "/Publication" +
                                          std::to_string(pb));
            g.Add(pub, v.type, v.publication);
            g.Add(pub, v.name, literal("Publication" + std::to_string(pb)));
            g.Add(pub, v.publication_author, person);
          }
        }
      }
      // The department head is a full professor.
      g.Add(faculty[rng.Uniform(0, 2)], v.head_of, dept);

      // Undergraduate students: ~5-8 per faculty member.
      uint64_t undergrads = faculty.size() * rng.Uniform(5, 8);
      for (uint64_t i = 0; i < undergrads; ++i) {
        rdf::TermId student =
            d.InternIri(dept_ns + "UndergraduateStudent" + std::to_string(i));
        g.Add(student, v.type, v.undergraduate_student);
        g.Add(student, v.name,
              literal("UndergraduateStudent" + std::to_string(i)));
        g.Add(student, v.email,
              literal("UndergraduateStudent" + std::to_string(i) + "@" + dept_ns));
        g.Add(student, v.member_of, dept);
        uint64_t ncourses = rng.Uniform(2, 4);
        for (uint64_t c = 0; c < ncourses; ++c) {
          g.Add(student, v.takes_course,
                courses[rng.Uniform(0, courses.size() - 1)]);
        }
        if (rng.Chance(0.2)) {
          g.Add(student, v.advisor,
                professors[rng.Uniform(0, professors.size() - 1)]);
        }
      }

      // Graduate students: ~2-3 per faculty member.
      uint64_t grads = faculty.size() * rng.Uniform(2, 3);
      for (uint64_t i = 0; i < grads; ++i) {
        rdf::TermId student =
            d.InternIri(dept_ns + "GraduateStudent" + std::to_string(i));
        g.Add(student, v.type, v.graduate_student);
        if (rng.Chance(0.25)) g.Add(student, v.type, v.teaching_assistant);
        g.Add(student, v.name, literal("GraduateStudent" + std::to_string(i)));
        g.Add(student, v.email,
              literal("GraduateStudent" + std::to_string(i) + "@" + dept_ns));
        g.Add(student, v.member_of, dept);
        g.Add(student, v.degree_from, any_university());
        size_t adv = rng.Uniform(0, professors.size() - 1);
        g.Add(student, v.advisor, professors[adv]);
        // LUBM correlation: about half of the graduate students take one of
        // the courses their advisor teaches — the structure behind queries
        // like Q9 (student / advisor / course triangles).
        if (rng.Chance(0.5) && !prof_grad_courses[adv].empty()) {
          const auto& own = prof_grad_courses[adv];
          g.Add(student, v.takes_course, own[rng.Uniform(0, own.size() - 1)]);
        }
        uint64_t ncourses = rng.Uniform(1, 3);
        for (uint64_t c = 0; c < ncourses; ++c) {
          g.Add(student, v.takes_course,
                grad_courses[rng.Uniform(0, grad_courses.size() - 1)]);
        }
      }
    }
  }
  g.Finalize();
  return g;
}

}  // namespace shapestats::datagen
