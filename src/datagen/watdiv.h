// WatDiv-style synthetic data generator (Aluç et al. — ref [2]).
// Reproduces the WatDiv e-commerce schema (products, users, reviews,
// offers, retailers, genres, locations) with the benchmark's hallmark
// skew: power-law product popularity and user out-degrees, which is what
// makes WatDiv a "diversified stress test" for cardinality estimators.
// The paper uses WATDIV-S (109 M) and WATDIV-L (1 B); the scale knob here
// produces structurally equivalent graphs at laptop scale.
#pragma once

#include "rdf/graph.h"

namespace shapestats::datagen {

inline constexpr const char* kWsdbmNs = "http://db.uwaterloo.ca/~galuc/wsdbm/";
inline constexpr const char* kSorgNs = "http://schema.org/";
inline constexpr const char* kRevNs = "http://purl.org/stuff/rev#";

struct WatDivOptions {
  uint32_t products = 8000;  // other entity counts scale from this
  uint64_t seed = 11;
};

/// Generates and finalizes a WatDiv-style graph.
rdf::Graph GenerateWatDiv(const WatDivOptions& options = {});

}  // namespace shapestats::datagen
