// YAGO-4-style heterogeneous data generator (Pellissier Tanon et al. —
// ref [21]). YAGO-4's defining property for this paper is its shape
// profile: thousands of classes with Zipf-distributed sizes and a very
// wide predicate vocabulary, yielding ~8.9k node shapes and ~81k property
// shapes at full scale. This generator reproduces that heterogeneity at
// laptop scale: classes draw per-class predicate profiles from a shared
// vocabulary, objects mix literals and cross-class entity links, and a
// fraction of entities carries multiple types.
#pragma once

#include "rdf/graph.h"

namespace shapestats::datagen {

inline constexpr const char* kYagoNs = "http://yago-knowledge.org/resource/";
inline constexpr const char* kSchemaNs = "http://schema.org/";

struct YagoOptions {
  uint32_t num_classes = 300;
  uint32_t num_predicates = 120;
  uint32_t num_entities = 60000;
  uint64_t seed = 23;
  /// When false the returned graph is left unfinalized, so callers can time
  /// or parameterize Graph::Finalize themselves (bench_preprocessing).
  bool finalize = true;
};

/// Generates (and by default finalizes) a YAGO-style heterogeneous graph.
rdf::Graph GenerateYago(const YagoOptions& options = {});

}  // namespace shapestats::datagen
