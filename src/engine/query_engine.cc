#include "engine/query_engine.h"

#include <numeric>

#include "opt/join_order.h"
#include "rdf/ntriples.h"
#include "shacl/generator.h"
#include "sparql/parser.h"
#include "stats/annotator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shapestats::engine {

const char* OptimizerName(EngineOptions::Optimizer opt) {
  switch (opt) {
    case EngineOptions::Optimizer::kShapeStats: return "shape-stats";
    case EngineOptions::Optimizer::kGlobalStats: return "global-stats";
    case EngineOptions::Optimizer::kTextual: return "textual";
  }
  return "?";
}

Result<QueryEngine> QueryEngine::Open(rdf::Graph graph, EngineOptions options) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before Open");
  }
  QueryEngine engine;
  engine.state_ = std::make_unique<State>();
  State& st = *engine.state_;
  st.options = options;
  st.graph = std::move(graph);
  st.gs = stats::GlobalStats::Compute(st.graph);

  switch (options.optimizer) {
    case EngineOptions::Optimizer::kShapeStats: {
      auto shapes = shacl::GenerateShapes(st.graph);
      // Data without rdf:type triples cannot anchor shapes; degrade to
      // global statistics rather than failing.
      if (shapes.ok()) {
        st.shapes = std::move(shapes).value();
        RETURN_NOT_OK(stats::AnnotateShapes(st.graph, &st.shapes).status());
        st.estimator = std::make_unique<card::CardinalityEstimator>(
            st.gs, &st.shapes, st.graph.dict(), card::StatsMode::kShape);
      } else {
        st.estimator = std::make_unique<card::CardinalityEstimator>(
            st.gs, nullptr, st.graph.dict(), card::StatsMode::kGlobal);
      }
      break;
    }
    case EngineOptions::Optimizer::kGlobalStats:
      st.estimator = std::make_unique<card::CardinalityEstimator>(
          st.gs, nullptr, st.graph.dict(), card::StatsMode::kGlobal);
      break;
    case EngineOptions::Optimizer::kTextual:
      break;
  }
  return engine;
}

Result<QueryEngine> QueryEngine::FromNTriplesFile(const std::string& path,
                                                  EngineOptions options) {
  rdf::Graph graph;
  RETURN_NOT_OK(rdf::LoadNTriplesFile(path, &graph));
  graph.Finalize();
  return Open(std::move(graph), options);
}

Result<opt::Plan> QueryEngine::PlanQuery(const sparql::EncodedBgp& bgp) const {
  if (state_->estimator == nullptr) {
    opt::Plan plan;
    plan.provider = "textual";
    plan.order.resize(bgp.patterns.size());
    std::iota(plan.order.begin(), plan.order.end(), 0);
    plan.step_estimates.assign(bgp.patterns.size(), 0);
    return plan;
  }
  return opt::PlanJoinOrder(bgp, *state_->estimator);
}

Result<QueryResult> QueryEngine::Execute(std::string_view sparql) const {
  Timer timer;
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  QueryResult result;
  result.shape = sparql::ClassifyShape(bgp);
  ASSIGN_OR_RETURN(result.plan, PlanQuery(bgp));
  result.plan_ms = timer.ElapsedMs();

  if (query.is_ask) {
    // One solution suffices.
    sparql::ParsedQuery probe = query;
    probe.limit = 1;
    ASSIGN_OR_RETURN(exec::ResultTable table,
                     exec::ExecuteSelect(state_->graph, probe, bgp,
                                         result.plan.order, state_->options.exec));
    result.ask = !table.rows.empty();
    result.total_ms = timer.ElapsedMs();
    return result;
  }
  if (query.count_aggregate) {
    // COUNT(*) counts solutions (bag semantics): run the BGP + filters and
    // read the match counter.
    sparql::ParsedQuery counting = query;
    counting.count_aggregate = false;
    counting.select_all = true;
    counting.projection.clear();
    ASSIGN_OR_RETURN(exec::ResultTable table,
                     exec::ExecuteSelect(state_->graph, counting, bgp,
                                         result.plan.order, state_->options.exec));
    result.count = table.bgp_matches;
    result.total_ms = timer.ElapsedMs();
    return result;
  }

  ASSIGN_OR_RETURN(result.table,
                   exec::ExecuteSelect(state_->graph, query, bgp,
                                       result.plan.order, state_->options.exec));
  result.total_ms = timer.ElapsedMs();
  return result;
}

Result<std::string> QueryEngine::Explain(std::string_view sparql) const {
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  ASSIGN_OR_RETURN(opt::Plan plan, PlanQuery(bgp));

  std::string out = "plan (" + plan.provider + " optimizer, query shape: " +
                    sparql::QueryShapeName(sparql::ClassifyShape(bgp)) + ")\n";
  for (size_t step = 0; step < plan.order.size(); ++step) {
    uint32_t tp = plan.order[step];
    out += "  " + std::to_string(step + 1) + ". " +
           query.patterns[tp].ToString();
    if (!plan.tp_estimates.empty()) {
      out += "   [tp card ~" +
             WithCommas(static_cast<uint64_t>(plan.tp_estimates[tp].card)) +
             ", step est ~" +
             WithCommas(static_cast<uint64_t>(plan.step_estimates[step])) + "]";
    }
    out += "\n";
  }
  if (!query.filters.empty()) {
    out += "  + " + std::to_string(query.filters.size()) +
           " filter(s), applied at the earliest step where bound\n";
  }
  if (plan.total_cost > 0) {
    out += "estimated cost: " +
           WithCommas(static_cast<uint64_t>(plan.total_cost)) + "\n";
  }
  return out;
}

}  // namespace shapestats::engine
