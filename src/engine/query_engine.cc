#include "engine/query_engine.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <optional>

#include "analysis/plan_verify.h"
#include "analysis/query_lint.h"
#include "card/corrected.h"
#include "exec/executor.h"
#include "obs/build_info.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "opt/join_order.h"
#include "phys/phys_executor.h"
#include "phys/planner.h"
#include "rdf/ntriples.h"
#include "shacl/generator.h"
#include "sparql/parser.h"
#include "stats/annotator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shapestats::engine {

namespace {

/// Resolves EngineOptions::plan_cache against SHAPESTATS_PLAN_CACHE.
bool PlanCacheEnabled(EngineOptions::PlanCacheMode mode) {
  switch (mode) {
    case EngineOptions::PlanCacheMode::kOn: return true;
    case EngineOptions::PlanCacheMode::kOff: return false;
    case EngineOptions::PlanCacheMode::kEnv: break;
  }
  const char* env = std::getenv("SHAPESTATS_PLAN_CACHE");
  if (env == nullptr || *env == '\0') return false;
  const std::string_view v(env);
  return v != "0" && v != "off" && v != "false" && v != "no";
}

/// Resolves EngineOptions::registry against SHAPESTATS_REGISTRY.
bool RegistryEnabled(EngineOptions::RegistryMode mode) {
  switch (mode) {
    case EngineOptions::RegistryMode::kOn: return true;
    case EngineOptions::RegistryMode::kOff: return false;
    case EngineOptions::RegistryMode::kEnv: break;
  }
  return obs::QueryRegistry::EnabledByEnv();
}

std::string FmtNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Assembles a self-contained flight-recorder bundle for one execution:
/// enough to diagnose the anomaly offline — query text, caller identity,
/// the logical and physical plan with per-step rationale, the full trace
/// (per-step est/true cardinalities when the run was traced), the final
/// resource snapshot, plan-cache and feedback state, and the build info.
std::string BuildFlightBundle(
    const char* trigger, std::string_view sparql, const char* outcome,
    const opt::Plan& plan, const phys::PhysicalPlan& pplan, double total_ms,
    uint64_t num_results, const obs::QueryTrace* trace,
    const obs::ResourceSnapshot* resources, const std::string& cache_template,
    const cache::PlanCache* pcache, uint64_t request_id, uint64_t batch_id,
    uint32_t slot) {
  std::string out = "{\"trigger\":\"" + std::string(trigger) + "\"";
  out += ",\"outcome\":\"" + std::string(outcome) + "\"";
  if (request_id != 0) out += ",\"request_id\":" + std::to_string(request_id);
  if (batch_id != 0) {
    out += ",\"batch_id\":" + std::to_string(batch_id) +
           ",\"slot\":" + std::to_string(slot);
  }
  out += ",\"query\":\"" + obs::JsonEscape(std::string(sparql)) + "\"";
  out += ",\"total_ms\":" + FmtNum(total_ms);
  out += ",\"num_results\":" + std::to_string(num_results);
  out += ",\"plan\":{\"provider\":\"" + obs::JsonEscape(plan.provider) +
         "\",\"est_cost\":" + FmtNum(plan.total_cost) + ",\"order\":[";
  for (size_t i = 0; i < plan.order.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(plan.order[i]);
  }
  out += "]}";
  if (!pplan.steps.empty()) {
    out += ",\"phys\":{\"summary\":\"" + obs::JsonEscape(pplan.Summary()) +
           "\",\"steps\":[";
    for (size_t i = 0; i < pplan.steps.size(); ++i) {
      const phys::PhysicalStep& ps = pplan.steps[i];
      if (i) out += ",";
      out += "{\"op\":\"" + std::string(phys::OpName(ps.op)) +
             "\",\"est_build\":" + FmtNum(ps.est_left) +
             ",\"est_probe\":" + FmtNum(ps.est_right) + ",\"rationale\":\"" +
             obs::JsonEscape(ps.rationale) + "\"}";
    }
    out += "]}";
  }
  if (trace != nullptr) out += ",\"trace\":" + trace->ToJson();
  if (resources != nullptr) out += ",\"resources\":" + resources->ToJson();
  out += ",\"cache\":{";
  out += "\"template\":\"" + obs::JsonEscape(cache_template) + "\"";
  if (pcache != nullptr) {
    const cache::PlanCache::StatsSnapshot cs = pcache->stats();
    out += ",\"hits\":" + std::to_string(cs.hits) +
           ",\"misses\":" + std::to_string(cs.misses) +
           ",\"size\":" + std::to_string(cs.size) +
           ",\"corrections\":" + std::to_string(cs.corrections) +
           ",\"hit_rate\":" + FmtNum(cs.hit_rate);
  }
  if (!plan.correction_factors.empty()) {
    out += ",\"correction_factors\":[";
    for (size_t i = 0; i < plan.correction_factors.size(); ++i) {
      if (i) out += ",";
      out += FmtNum(plan.correction_factors[i]);
    }
    out += "]";
  }
  out += "}";
  out += ",\"build\":" + obs::BuildInfoJson();
  out += "}";
  return out;
}

/// Per-step observed/estimated ratios attributed to the pattern each step
/// introduced, expressed against the *uncorrected* estimate (applied
/// factors composed back in) in canonical pattern numbering. Step 0 blames
/// the opening scan's pattern directly; step k >= 1 blames its pattern
/// with the incremental ratio (true_k/true_{k-1}) / (est_k/est_{k-1}), so
/// upstream misestimates are not double-counted downstream.
std::vector<cache::FeedbackStore::Sample> FeedbackSamples(
    const cache::CanonicalTemplate& tmpl, const opt::Plan& plan,
    const std::vector<uint64_t>& truth) {
  std::vector<cache::FeedbackStore::Sample> samples;
  const std::vector<double>& est = plan.step_estimates;
  const std::vector<double>& factors = plan.correction_factors;
  const size_t n = std::min(est.size(), truth.size());
  double prev_t = 0;
  double prev_e = 0;
  for (size_t k = 0; k < n && k < plan.order.size(); ++k) {
    const uint32_t tp = plan.order[k];
    if (tp >= tmpl.instance_to_canon.size()) break;
    const double applied = tp < factors.size() ? factors[tp] : 1.0;
    // A true count of zero still carries signal (the estimate was high);
    // clamp to 0.5 so the log-ratio stays finite.
    const double t = std::max(static_cast<double>(truth[k]), 0.5);
    const double e = est[k];
    if (!(e > 0) || !std::isfinite(e)) break;
    double ratio;
    if (k == 0) {
      ratio = t / e * applied;
    } else {
      if (!(prev_t > 0) || !(prev_e > 0)) break;
      ratio = (t / prev_t) / (e / prev_e) * applied;
    }
    samples.push_back({tmpl.instance_to_canon[tp], ratio});
    // Once the true intermediate hits zero every later step is zero too —
    // no attributable signal remains.
    if (truth[k] == 0) break;
    prev_t = t;
    prev_e = e;
  }
  return samples;
}

}  // namespace

const char* OptimizerName(EngineOptions::Optimizer opt) {
  switch (opt) {
    case EngineOptions::Optimizer::kShapeStats: return "shape-stats";
    case EngineOptions::Optimizer::kGlobalStats: return "global-stats";
    case EngineOptions::Optimizer::kTextual: return "textual";
  }
  return "?";
}

Result<QueryEngine> QueryEngine::Open(rdf::Graph graph, EngineOptions options) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before Open");
  }
  Timer open_timer;
  obs::TraceSpan open_span("engine", "open");
  QueryEngine engine;
  engine.state_ = std::make_unique<State>();
  State& st = *engine.state_;
  st.options = options;
  st.graph = std::move(graph);
  util::ThreadPool* pool = options.pool;
  Timer phase;
  {
    obs::TraceSpan span("engine", "preprocess:global_stats");
    st.gs = stats::GlobalStats::Compute(st.graph, pool);
  }
  obs::MetricsRegistry::Global().Observe("engine.preprocess.global_stats_ms",
                                         phase.ElapsedMs());

  switch (options.optimizer) {
    case EngineOptions::Optimizer::kShapeStats: {
      auto shapes = shacl::GenerateShapes(st.graph);
      // Data without rdf:type triples cannot anchor shapes; degrade to
      // global statistics rather than failing.
      if (shapes.ok()) {
        st.shapes = std::move(shapes).value();
        phase.Reset();
        {
          obs::TraceSpan span("engine", "preprocess:annotate_shapes");
          RETURN_NOT_OK(
              stats::AnnotateShapes(st.graph, &st.shapes, pool).status());
        }
        obs::MetricsRegistry::Global().Observe("engine.preprocess.annotate_ms",
                                               phase.ElapsedMs());
        st.estimator = std::make_unique<card::CardinalityEstimator>(
            st.gs, &st.shapes, st.graph.dict(), card::StatsMode::kShape);
      } else {
        st.estimator = std::make_unique<card::CardinalityEstimator>(
            st.gs, nullptr, st.graph.dict(), card::StatsMode::kGlobal);
      }
      break;
    }
    case EngineOptions::Optimizer::kGlobalStats:
      st.estimator = std::make_unique<card::CardinalityEstimator>(
          st.gs, nullptr, st.graph.dict(), card::StatsMode::kGlobal);
      break;
    case EngineOptions::Optimizer::kTextual:
      break;
  }
  if (PlanCacheEnabled(options.plan_cache)) {
    st.plan_cache =
        std::make_unique<cache::PlanCache>(options.plan_cache_options);
  }
  if (RegistryEnabled(options.registry)) {
    st.registry = &obs::QueryRegistry::Global();
  }
  if (obs::FlightRecorder::Global().active()) {
    st.flight = &obs::FlightRecorder::Global();
  }
  obs::PublishPoolMetrics(pool != nullptr ? *pool : util::ThreadPool::Shared());
  obs::EventLog& log = obs::EventLog::Global();
  if (log.active()) {
    log.Emit(obs::Event("engine.open")
                 .Str("optimizer", OptimizerName(options.optimizer))
                 .Uint("triples", st.graph.NumTriples())
                 .Uint("shapes", st.shapes.NumNodeShapes())
                 .Num("ms", open_timer.ElapsedMs()));
  }
  return engine;
}

Result<QueryEngine> QueryEngine::FromNTriplesFile(const std::string& path,
                                                  EngineOptions options) {
  rdf::Graph graph;
  {
    obs::TraceSpan span("engine", "preprocess:load");
    RETURN_NOT_OK(rdf::LoadNTriplesFile(path, &graph));
  }
  Timer phase;
  {
    obs::TraceSpan span("engine", "preprocess:finalize");
    graph.Finalize(options.pool);
  }
  obs::MetricsRegistry::Global().Observe("engine.preprocess.finalize_ms",
                                         phase.ElapsedMs());
  return Open(std::move(graph), options);
}

analysis::ShapeChecker QueryEngine::Checker() const {
  return analysis::ShapeChecker(
      state_->gs,
      state_->shapes.NumNodeShapes() > 0 ? &state_->shapes : nullptr,
      state_->graph.dict());
}

Result<opt::Plan> QueryEngine::PlanQuery(
    const sparql::EncodedBgp& bgp, obs::PlannerTrace* trace,
    const std::unordered_map<sparql::VarId, rdf::TermId>* inferred,
    const std::vector<double>* corrections) const {
  opt::Plan plan;
  if (state_->estimator == nullptr) {
    plan.provider = "textual";
    plan.order.resize(bgp.patterns.size());
    std::iota(plan.order.begin(), plan.order.end(), 0);
    plan.step_estimates.assign(bgp.patterns.size(), 0);
    // Textual order executes as written; record whether that order forces
    // Cartesian steps so the plan verifier judges it by the same contract
    // as optimized plans.
    for (size_t k = 1; k < plan.order.size() && !plan.has_cartesian; ++k) {
      bool joins = false;
      for (size_t j = 0; j < k && !joins; ++j) {
        joins = sparql::Joinable(bgp.patterns[plan.order[j]],
                                 bgp.patterns[plan.order[k]]);
      }
      plan.has_cartesian = !joins;
    }
  } else {
    // Static-checker-proven class anchors tighten the shape estimates for
    // untyped subject variables (per-query provider view; the shared
    // estimator stays untouched).
    const card::PlannerStatsProvider* provider = state_->estimator.get();
    std::optional<card::AnchoredEstimator> anchored;
    if (inferred != nullptr && !inferred->empty()) {
      anchored.emplace(*state_->estimator, *inferred);
      provider = &*anchored;
    }
    if (corrections != nullptr && !corrections->empty()) {
      // Feedback-learned adjustment factors scale the per-pattern
      // cardinalities (card::CorrectedProvider) — same provider label, so
      // ledger populations stay comparable.
      card::CorrectedProvider corrected(*provider, *corrections);
      plan = opt::PlanJoinOrder(bgp, corrected, trace);
      plan.correction_factors = *corrections;
    } else {
      plan = opt::PlanJoinOrder(bgp, *provider, trace);
    }
  }
  if (state_->options.verify_plans) {
    analysis::Diagnostics diags = analysis::PlanVerifier().Verify(plan, bgp);
    if (analysis::HasErrors(diags)) {
      return Status::Internal("plan failed verification:\n" +
                              analysis::ToText(diags));
    }
  }
  return plan;
}

Result<phys::PhysicalPlan> QueryEngine::PlanPhysicalFor(
    const sparql::EncodedBgp& bgp, const opt::Plan& plan) const {
  phys::PlannerOptions popts;
  popts.mode = state_->options.join_mode;
  phys::PhysicalPlan pplan =
      phys::PlanPhysical(bgp, plan, state_->graph, popts);
  if (state_->options.verify_plans) {
    analysis::Diagnostics diags =
        analysis::PlanVerifier().Verify(pplan, plan, bgp);
    if (analysis::HasErrors(diags)) {
      return Status::Internal("physical plan failed verification:\n" +
                              analysis::ToText(diags));
    }
  }
  return pplan;
}

Result<analysis::Diagnostics> QueryEngine::Lint(std::string_view sparql) const {
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  analysis::Diagnostics diags =
      analysis::QueryLint(state_->gs, state_->graph.dict()).Lint(bgp);
  obs::EventLog& log = obs::EventLog::Global();
  if (!diags.empty() && log.active()) {
    log.Emit(obs::Event("lint")
                 .Uint("findings", diags.size())
                 .Str("first_rule", diags.front().rule));
  }
  return diags;
}

Result<analysis::ShapeCheckResult> QueryEngine::StaticCheck(
    std::string_view sparql) const {
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  analysis::Diagnostics lint =
      analysis::QueryLint(state_->gs, state_->graph.dict()).Lint(query, bgp);
  analysis::ShapeCheckResult check = Checker().Check(query, bgp);
  check.diagnostics.insert(check.diagnostics.begin(), lint.begin(),
                           lint.end());
  return check;
}

void QueryEngine::FillStepTraces(const sparql::ParsedQuery& query,
                                 const sparql::EncodedBgp& bgp,
                                 const opt::Plan& plan,
                                 const phys::PhysicalPlan* pplan,
                                 const std::vector<card::EstimateDetail>& details,
                                 const std::vector<uint64_t>& true_cards,
                                 obs::QueryTrace* trace, bool record) const {
  for (size_t k = 0; k < plan.order.size(); ++k) {
    const uint32_t tp = plan.order[k];
    obs::StepTrace step;
    step.step = static_cast<uint32_t>(k + 1);
    step.pattern = tp;
    step.pattern_text = query.patterns[tp].ToString();
    if (pplan != nullptr && k < pplan->steps.size()) {
      const phys::PhysicalStep& ps = pplan->steps[k];
      step.join_type = phys::OpName(ps.op);
      step.est_build = ps.est_left;
      step.est_probe = ps.est_right;
    } else if (k == 0) {
      step.join_type = "scan";
    } else {
      bool joins = false;
      for (size_t j = 0; j < k && !joins; ++j) {
        joins = sparql::Joinable(bgp.patterns[plan.order[j]],
                                 bgp.patterns[plan.order[k]]);
      }
      step.join_type = joins ? "join" : "product";
    }
    if (tp < details.size()) {
      step.source = details[tp].source;
      step.formula = details[tp].formula;
      step.tp_est = details[tp].est.card;
    } else {
      step.source = "textual";
    }
    step.est_card = k < plan.step_estimates.size() ? plan.step_estimates[k] : 0;
    step.true_card = k < true_cards.size() ? true_cards[k] : 0;
    step.q_error = state_->estimator != nullptr
                       ? obs::QError(step.est_card,
                                     static_cast<double>(step.true_card))
                       : std::numeric_limits<double>::quiet_NaN();
    if (k < trace->exec.step_rows_scanned.size()) {
      step.rows_scanned = trace->exec.step_rows_scanned[k];
      step.index_probes = trace->exec.step_probes[k];
    }
    trace->steps.push_back(std::move(step));
  }
  trace->true_total_cost =
      std::accumulate(true_cards.begin(), true_cards.end(), uint64_t{0});
  if (record) state_->ledger.Record(*trace);
  obs::EventLog& log = obs::EventLog::Global();
  if (log.active()) {
    for (const obs::StepTrace& s : trace->steps) {
      obs::Event ev("query.step");
      ev.Str("optimizer", trace->optimizer)
          .Str("query_shape", trace->query_shape)
          .Uint("step", s.step)
          .Str("source", s.source)
          .Str("join_type", s.join_type)
          .Num("est_card", s.est_card)
          .Uint("true_card", s.true_card);
      if (!std::isnan(s.q_error)) ev.Num("q_error", s.q_error);
      log.Emit(std::move(ev));
    }
  }
}

Result<QueryResult> QueryEngine::Execute(std::string_view sparql,
                                         obs::QueryTrace* trace) const {
  return ExecuteInternal(sparql, trace, nullptr);
}

Result<QueryResult> QueryEngine::ExecuteInternal(std::string_view sparql,
                                                 obs::QueryTrace* trace,
                                                 const ExecContext* ctx) const {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("engine.queries");
  static obs::Histogram* query_ms =
      obs::MetricsRegistry::Global().GetHistogram("engine.query_ms");
  obs::EventLog& log = obs::EventLog::Global();
  obs::TraceSpan span("engine", "query");
  Timer timer;
  Timer phase;
  // Introspection registration: the live record (with its per-query
  // ResourceTracker) exists from here until a finish path completes it;
  // early error returns finalize it with outcome "error" via RAII. A
  // traced execution on a registry-less engine still gets a local tracker
  // so EXPLAIN ANALYZE-style callers see resource totals.
  obs::QueryRegistry::Registration reg;
  std::optional<obs::ResourceTracker> local_tracker;
  obs::ResourceTracker* tracker = nullptr;
  if (state_->registry != nullptr) {
    reg = state_->registry->Register(std::string(sparql),
                                     ctx != nullptr ? ctx->request_id : 0,
                                     ctx != nullptr ? ctx->batch_id : 0,
                                     ctx != nullptr ? ctx->slot : 0);
    reg.SetPhase("parse");
    tracker = reg.tracker();
  } else if (trace != nullptr) {
    local_tracker.emplace();
    tracker = &*local_tracker;
  }
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  if (trace != nullptr) {
    trace->query = std::string(sparql);
    trace->AddPhase("parse", phase.ElapsedMs());
    phase.Reset();
  }
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  if (trace != nullptr) {
    trace->AddPhase("encode", phase.ElapsedMs());
    phase.Reset();
  }
  reg.SetPhase("analyze");
  QueryResult result;
  result.shape = sparql::ClassifyShape(bgp);
  if (trace != nullptr) {
    // Shape classification runs on every query regardless of caching, so it
    // gets its own phase instead of inflating the static-check span.
    trace->AddPhase("analyze", phase.ElapsedMs());
    phase.Reset();
  }
  if (log.active()) {
    log.Emit(obs::Event("query.start")
                 .Str("query_shape", sparql::QueryShapeName(result.shape))
                 .Uint("patterns", bgp.patterns.size()));
  }

  // Plan-cache lookup: canonicalize the query into its BGP template and
  // try to reuse the stored verdict + plans. Bypassed (uncacheable)
  // queries and cache-less engines take the unchanged path below.
  cache::PlanCache* pcache = state_->plan_cache.get();
  cache::CanonicalTemplate tmpl;
  std::shared_ptr<const cache::CachedPlan> cached;
  bool cache_eligible = false;
  if (pcache != nullptr) {
    tmpl = cache::CanonicalizeTemplate(query, bgp, state_->gs.rdf_type_id);
    if (tmpl.cacheable) {
      cache_eligible = true;
      cached = pcache->Get(tmpl.key);
    } else {
      pcache->NoteBypass();
    }
  }
  if (cached != nullptr && trace != nullptr) {
    trace->plan_cached = true;
    trace->cache_template = cached->short_id;
  }
  // Template identity for the registry record and flight bundles.
  std::string template_id;
  if (cached != nullptr) {
    template_id = cached->short_id;
  } else if (cache_eligible) {
    template_id = tmpl.ShortId();
  }
  if (!template_id.empty()) reg.SetTemplate(template_id);

  // Answers a provably-empty query with zero rows (verdict from the
  // checker or the cache), skipping optimize + execute.
  auto finish_empty = [&]() {
    static obs::Counter* short_circuits =
        obs::MetricsRegistry::Global().GetCounter(
            "static_check.short_circuits");
    result.plan.provider = "static-empty";
    if (query.is_ask) {
      result.ask = false;
    } else if (query.count_aggregate) {
      result.count = 0;
    } else if (query.select_all) {
      result.table.var_names = bgp.var_names;
    } else {
      for (const sparql::Variable& v : query.projection) {
        result.table.var_names.push_back(v.name);
      }
    }
    result.plan_ms = timer.ElapsedMs();
    result.total_ms = result.plan_ms;
    queries->Add();
    query_ms->Observe(result.total_ms);
    short_circuits->Add();
    reg.Complete("static-empty", 0);
    if (trace != nullptr) {
      trace->optimizer = result.plan.provider;
      trace->query_shape = sparql::QueryShapeName(result.shape);
      trace->num_results = 0;
      trace->total_ms = result.total_ms;
    }
    if (log.active()) {
      log.Emit(obs::Event("query.finish")
                   .Str("optimizer", result.plan.provider)
                   .Str("query_shape", sparql::QueryShapeName(result.shape))
                   .Uint("results", 0)
                   .Bool("timed_out", false)
                   .Num("ms", result.total_ms));
    }
    return result;
  };

  std::unordered_map<sparql::VarId, rdf::TermId> inferred_anchors;
  if (cached != nullptr) {
    // Cache hit: the stored verdict and plans are valid for every instance
    // of the template (estimates and emptiness rules are value-independent
    // given the key's concrete predicates, class constants, and
    // constant-distinctness classes).
    if (cached->checked) {
      if (trace != nullptr) {
        trace->static_verdict = analysis::SatisfiabilityName(cached->verdict);
        trace->AddPhase("static-check", phase.ElapsedMs());
        phase.Reset();
      }
      if (cached->verdict != analysis::Satisfiability::kSatisfiable &&
          !cached->lint_errors) {
        return finish_empty();
      }
      if (state_->options.infer_constraints) {
        for (const auto& [canon_var, cls] : cached->inferred) {
          if (canon_var < tmpl.var_canon_to_instance.size()) {
            inferred_anchors[tmpl.var_canon_to_instance[canon_var]] = cls;
          }
        }
      }
    }
    result.plan = cache::PlanToInstance(cached->plan, tmpl);
    result.phys = cache::PhysToInstance(cached->phys, tmpl);
  } else {
    // Shape-aware static check: a provably-empty BGP is answered with zero
    // rows right here, skipping optimize + execute; a satisfiable one may
    // still contribute inferred class anchors to the estimator.
    analysis::ShapeCheckResult check;
    bool lint_errors = false;
    if (state_->options.static_check) {
      reg.SetPhase("static-check");
      check = Checker().Check(query, bgp);
      if (trace != nullptr) {
        trace->static_verdict = analysis::SatisfiabilityName(check.verdict);
        trace->AddPhase("static-check", phase.ElapsedMs());
        phase.Reset();
      }
      if (log.active() &&
          (check.provably_empty() || !check.inferred.empty())) {
        log.Emit(obs::Event("query.static")
                     .Str("verdict",
                          analysis::SatisfiabilityName(check.verdict))
                     .Str("rule", check.rule)
                     .Uint("findings", check.diagnostics.size())
                     .Uint("inferred", check.inferred.size()));
      }
      if (check.provably_empty()) {
        // Degenerate queries (unbound projection / FILTER / ORDER BY
        // variables) must keep failing exactly as the executor would fail
        // them — only clean queries take the short-circuit.
        analysis::Diagnostics full_lint =
            analysis::QueryLint(state_->gs, state_->graph.dict())
                .Lint(query, bgp);
        lint_errors = analysis::HasErrors(full_lint);
        if (!lint_errors) {
          if (cache_eligible) {
            // Repeated provably-empty templates short-circuit straight
            // from the cache, skipping even the checker.
            auto entry = std::make_shared<cache::CachedPlan>();
            entry->template_hash = tmpl.hash;
            entry->short_id = tmpl.ShortId();
            entry->num_patterns = static_cast<uint32_t>(bgp.patterns.size());
            entry->checked = true;
            entry->verdict = check.verdict;
            entry->rule = check.rule;
            entry->feedback_version = pcache->feedback().Version(tmpl.hash);
            pcache->Put(tmpl.key, std::move(entry));
          }
          return finish_empty();
        }
      }
      if (state_->options.infer_constraints && !check.inferred.empty()) {
        inferred_anchors = check.InferredAnchors(state_->gs);
      }
    }

    // Feedback-learned correction factors for this template, mapped into
    // instance pattern numbering. The feedback version is read before the
    // factors so a concurrent publication can only make the entry look
    // stale (forcing a harmless re-plan), never fresh.
    std::vector<double> corrections_canon;
    std::vector<double> corrections_instance;
    uint64_t feedback_version = 0;
    if (cache_eligible) {
      feedback_version = pcache->feedback().Version(tmpl.hash);
      corrections_canon =
          pcache->feedback().Factors(tmpl.hash, bgp.patterns.size());
      bool any = false;
      for (double f : corrections_canon) any = any || f != 1.0;
      if (any) {
        corrections_instance.resize(bgp.patterns.size(), 1.0);
        for (size_t i = 0; i < bgp.patterns.size(); ++i) {
          corrections_instance[i] = corrections_canon[tmpl.instance_to_canon[i]];
        }
      } else {
        corrections_canon.clear();
      }
    }

    reg.SetPhase("plan");
    ASSIGN_OR_RETURN(
        result.plan,
        PlanQuery(bgp, trace != nullptr ? &trace->planner : nullptr,
                  &inferred_anchors,
                  corrections_instance.empty() ? nullptr
                                               : &corrections_instance));
    ASSIGN_OR_RETURN(result.phys, PlanPhysicalFor(bgp, result.plan));

    if (cache_eligible) {
      auto entry = std::make_shared<cache::CachedPlan>();
      entry->template_hash = tmpl.hash;
      entry->short_id = tmpl.ShortId();
      entry->num_patterns = static_cast<uint32_t>(bgp.patterns.size());
      entry->checked = state_->options.static_check;
      entry->verdict = check.verdict;
      entry->rule = check.rule;
      entry->lint_errors = lint_errors;
      if (state_->options.infer_constraints) {
        for (const auto& [var, cls] : inferred_anchors) {
          entry->inferred.emplace_back(tmpl.var_instance_to_canon[var], cls);
        }
      }
      // The physical plan is cached before any ASK/LIMIT pipelining
      // downgrade, which is applied per instance below.
      entry->plan = cache::PlanToCanonical(result.plan, tmpl);
      entry->phys = cache::PhysToCanonical(result.phys, tmpl);
      entry->corrections = std::move(corrections_canon);
      entry->feedback_version = feedback_version;
      pcache->Put(tmpl.key, std::move(entry));
    }
  }

  exec::ExecOptions eopts = state_->options.exec;
  // Physical operator selection rides inside the "plan" phase. ASK and
  // LIMIT queries stay on the streaming depth-first executor (early
  // termination beats materializing), recorded as a per-step downgrade.
  const bool pipelined =
      query.is_ask || query.limit.has_value() || eopts.limit > 0;
  if (pipelined && result.phys.Materializes()) {
    phys::ForceInlj(&result.phys, "pipelined: ASK/LIMIT early termination");
  }
  result.plan_ms = timer.ElapsedMs();
  if (trace != nullptr) {
    trace->AddPhase("plan", phase.ElapsedMs());
    phase.Reset();
    trace->optimizer = result.plan.provider;
    trace->query_shape = sparql::QueryShapeName(result.shape);
    trace->est_total_cost = result.plan.total_cost;
    for (double f : result.plan.correction_factors) {
      if (f != 1.0) trace->est_corrected = true;
    }
    eopts.trace = &trace->exec;
  }
  if (log.active()) {
    obs::Event ev("query.plan");
    ev.Str("optimizer", result.plan.provider)
        .Num("est_cost", result.plan.total_cost)
        .Bool("cartesian", result.plan.has_cartesian);
    std::string order;
    for (uint32_t tp : result.plan.order) {
      if (!order.empty()) order += ",";
      order += std::to_string(tp);
    }
    ev.Str("order", order);
    log.Emit(std::move(ev));
  }
  span.Arg("optimizer", result.plan.provider);
  span.Arg("shape", sparql::QueryShapeName(result.shape));
  reg.SetStepsTotal(result.plan.order.size());
  reg.SetPhase("execute");
  eopts.resources = tracker;

  // Per-pattern estimate provenance, needed to annotate step traces and
  // feed the accuracy ledger. Only computed for traced executions.
  std::vector<card::EstimateDetail> details;
  if (trace != nullptr && state_->estimator != nullptr) {
    details = state_->estimator->EstimateAllDetailed(bgp, &inferred_anchors);
    trace->AddPhase("estimate", phase.ElapsedMs());
    phase.Reset();
  }

  auto finish = [&](uint64_t num_results, bool timed_out, bool cancelled) {
    result.total_ms = timer.ElapsedMs();
    queries->Add();
    query_ms->Observe(result.total_ms);
    // Final resource snapshot: per-query distribution histograms for the
    // Prometheus plane, the trace's resources block, and the registry's
    // completed record all read the same numbers.
    obs::ResourceSnapshot snap;
    if (tracker != nullptr) {
      snap = tracker->Snapshot();
      static obs::Histogram* h_probes =
          obs::MetricsRegistry::Global().GetHistogram(
              "exec.query_index_probes");
      static obs::Histogram* h_scanned =
          obs::MetricsRegistry::Global().GetHistogram(
              "exec.query_rows_scanned");
      static obs::Histogram* h_materialized =
          obs::MetricsRegistry::Global().GetHistogram(
              "exec.query_rows_materialized");
      static obs::Histogram* h_peak =
          obs::MetricsRegistry::Global().GetHistogram("exec.query_peak_bytes");
      static obs::Histogram* h_build =
          obs::MetricsRegistry::Global().GetHistogram(
              "exec.query_build_bytes");
      h_probes->Observe(static_cast<double>(snap.index_probes));
      h_scanned->Observe(static_cast<double>(snap.rows_scanned));
      h_materialized->Observe(static_cast<double>(snap.rows_materialized));
      h_peak->Observe(static_cast<double>(snap.peak_bytes));
      h_build->Observe(static_cast<double>(snap.build_bytes));
    }
    if (trace != nullptr) {
      trace->AddPhase("execute", phase.ElapsedMs());
      trace->num_results = num_results;
      trace->timed_out = timed_out;
      trace->cancelled = cancelled;
      trace->total_ms = result.total_ms;
      if (tracker != nullptr) {
        trace->resources = snap;
        trace->has_resources = true;
      }
      // ASK probes (LIMIT 1) and explicit LIMIT / timeout runs truncate
      // execution, so their per-step counts are not true cardinalities —
      // they get step annotations but stay out of the accuracy ledger.
      bool exact = !query.is_ask && !query.limit.has_value() && !timed_out &&
                   !trace->exec.step_rows_produced.empty();
      FillStepTraces(query, bgp, result.plan, &result.phys, details,
                     trace->exec.step_rows_produced, trace, exact);
      // Close the feedback loop: exact per-step truths become learned
      // adjustment factors for this template. A publication bumps the
      // template's feedback version, so its cached plan re-plans (under
      // the corrected estimates) on the next lookup.
      if (exact && cache_eligible && state_->estimator != nullptr) {
        std::vector<cache::FeedbackStore::Sample> samples =
            FeedbackSamples(tmpl, result.plan,
                            trace->exec.step_rows_produced);
        if (!samples.empty()) pcache->RecordFeedback(tmpl.hash, samples);
      }
    }
    const char* outcome =
        cancelled ? "cancelled" : (timed_out ? "timeout" : "ok");
    reg.Complete(outcome, num_results);
    // Flight-recorder anomaly triggers: cancellation, latency over the
    // slow threshold, or a per-step q-error over the threshold (traced
    // runs only — untracked runs have no step annotations to judge).
    obs::FlightRecorder* fr = state_->flight;
    if (fr != nullptr) {
      const char* trigger = nullptr;
      if (cancelled) {
        trigger = "cancelled";
      } else if (fr->slow_ms() >= 0 && result.total_ms >= fr->slow_ms()) {
        trigger = "slow";
      } else if (fr->max_q_error() > 0 && trace != nullptr) {
        for (const obs::StepTrace& s : trace->steps) {
          if (!std::isnan(s.q_error) && s.q_error > fr->max_q_error()) {
            trigger = "qerror";
            break;
          }
        }
      }
      if (trigger != nullptr) {
        fr->Record(trigger,
                   BuildFlightBundle(
                       trigger, sparql, outcome, result.plan, result.phys,
                       result.total_ms, num_results, trace,
                       tracker != nullptr ? &snap : nullptr, template_id,
                       state_->plan_cache.get(),
                       ctx != nullptr ? ctx->request_id : 0,
                       ctx != nullptr ? ctx->batch_id : 0,
                       ctx != nullptr ? ctx->slot : 0));
      }
    }
    if (log.active()) {
      log.Emit(obs::Event("query.finish")
                   .Str("optimizer", result.plan.provider)
                   .Str("query_shape", sparql::QueryShapeName(result.shape))
                   .Uint("results", num_results)
                   .Bool("timed_out", timed_out)
                   .Num("ms", result.total_ms));
    }
  };

  if (query.is_ask) {
    // One solution suffices.
    sparql::ParsedQuery probe = query;
    probe.limit = 1;
    ASSIGN_OR_RETURN(exec::ResultTable table,
                     exec::ExecuteSelect(state_->graph, probe, bgp,
                                         result.plan.order, eopts));
    result.ask = !table.rows.empty();
    finish(table.rows.size(), table.timed_out, table.cancelled);
    return result;
  }
  if (query.count_aggregate) {
    // COUNT(*) counts solutions (bag semantics): run the BGP + filters and
    // read the match counter.
    sparql::ParsedQuery counting = query;
    counting.count_aggregate = false;
    counting.select_all = true;
    counting.projection.clear();
    exec::ResultTable table;
    if (result.phys.Materializes()) {
      ASSIGN_OR_RETURN(table,
                       phys::ExecuteSelectPhysical(state_->graph, counting,
                                                   bgp, result.phys, eopts));
    } else {
      ASSIGN_OR_RETURN(table,
                       exec::ExecuteSelect(state_->graph, counting, bgp,
                                           result.plan.order, eopts));
    }
    result.count = table.bgp_matches;
    finish(table.bgp_matches, table.timed_out, table.cancelled);
    return result;
  }

  if (result.phys.Materializes()) {
    ASSIGN_OR_RETURN(result.table,
                     phys::ExecuteSelectPhysical(state_->graph, query, bgp,
                                                 result.phys, eopts));
  } else {
    ASSIGN_OR_RETURN(result.table,
                     exec::ExecuteSelect(state_->graph, query, bgp,
                                         result.plan.order, eopts));
  }
  finish(result.table.rows.size(), result.table.timed_out,
         result.table.cancelled);
  return result;
}

BatchResult QueryEngine::ExecuteBatch(const std::vector<std::string>& queries,
                                      const BatchOptions& options) const {
  static obs::Counter* batches =
      obs::MetricsRegistry::Global().GetCounter("engine.batches");
  static obs::Counter* batch_queries =
      obs::MetricsRegistry::Global().GetCounter("engine.batch_queries");
  static obs::Histogram* batch_ms =
      obs::MetricsRegistry::Global().GetHistogram("engine.batch_ms");
  util::ThreadPool& pool =
      options.pool != nullptr
          ? *options.pool
          : (state_->options.pool != nullptr ? *state_->options.pool
                                             : util::ThreadPool::Shared());
  // Process-unique id correlating this batch's events with its result slots.
  static std::atomic<uint64_t> next_batch_id{1};
  obs::EventLog& log = obs::EventLog::Global();
  BatchResult batch;
  batch.batch_id = next_batch_id.fetch_add(1, std::memory_order_relaxed);
  batch.results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.results.emplace_back(Status::Internal("query not executed"));
  }
  if (options.collect_traces) batch.traces.resize(queries.size());

  obs::TraceSpan span("engine", "batch");
  span.Arg("queries", std::to_string(queries.size()));
  span.Arg("pool", pool.label());
  if (log.active()) {
    obs::Event ev("batch.start");
    ev.Uint("batch_id", batch.batch_id)
        .Uint("queries", queries.size())
        .Str("pool", pool.label())
        .Uint("threads", pool.num_threads());
    if (options.request_id != 0) ev.Uint("request_id", options.request_id);
    log.Emit(std::move(ev));
  }
  Timer timer;
  // Queries only read the finalized graph and the immutable statistics (the
  // estimator's shape cache is internally synchronized), so they fan out
  // directly; every query writes only its own slot, which makes the batch
  // output independent of scheduling.
  pool.ParallelFor(0, queries.size(), [&](size_t i) {
    obs::QueryTrace* trace =
        options.collect_traces ? &batch.traces[i] : nullptr;
    const ExecContext ctx{options.request_id, batch.batch_id,
                          static_cast<uint32_t>(i)};
    batch.results[i] = ExecuteInternal(queries[i], trace, &ctx);
    if (log.active()) {
      const Result<QueryResult>& r = batch.results[i];
      obs::Event ev("batch.query");
      ev.Uint("batch_id", batch.batch_id).Uint("slot", i).Bool("ok", r.ok());
      if (options.request_id != 0) ev.Uint("request_id", options.request_id);
      if (r.ok()) {
        uint64_t results = r->count ? *r->count
                           : r->ask ? static_cast<uint64_t>(*r->ask)
                                    : r->table.rows.size();
        ev.Uint("results", results)
            .Bool("timed_out", r->table.timed_out)
            .Num("ms", r->total_ms);
      } else {
        ev.Str("error", r.status().ToString());
      }
      log.Emit(std::move(ev));
    }
  });
  batch.wall_ms = timer.ElapsedMs();
  size_t failures = 0;
  for (const Result<QueryResult>& r : batch.results) {
    if (r.ok()) {
      batch.sum_query_ms += r->total_ms;
    } else {
      ++failures;
    }
  }
  batches->Add();
  batch_queries->Add(queries.size());
  batch_ms->Observe(batch.wall_ms);
  obs::PublishPoolMetrics(pool);
  if (log.active()) {
    util::ThreadPool::StatsSnapshot stats = pool.stats();
    obs::Event ev("batch.finish");
    ev.Uint("batch_id", batch.batch_id)
        .Uint("queries", queries.size())
        .Uint("failures", failures)
        .Num("wall_ms", batch.wall_ms)
        .Num("sum_query_ms", batch.sum_query_ms);
    if (options.request_id != 0) ev.Uint("request_id", options.request_id);
    log.Emit(std::move(ev));
    log.Emit(obs::Event("pool")
                 .Str("label", pool.label())
                 .Uint("threads", stats.num_threads)
                 .Uint("tasks_executed", stats.tasks_executed)
                 .Uint("peak_queue_depth", stats.peak_queue_depth));
  }
  return batch;
}

Result<std::string> QueryEngine::Explain(std::string_view sparql) const {
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());

  analysis::ShapeCheckResult check;
  std::unordered_map<sparql::VarId, rdf::TermId> inferred_anchors;
  if (state_->options.static_check) {
    check = Checker().Check(query, bgp);
    if (state_->options.infer_constraints) {
      inferred_anchors = check.InferredAnchors(state_->gs);
    }
  }
  // With the plan cache enabled, EXPLAIN reports the query's template,
  // whether it is currently cached, and any feedback corrections in force
  // — and plans under those corrections, so the output matches what
  // Execute would run.
  cache::PlanCache* pcache = state_->plan_cache.get();
  cache::CanonicalTemplate tmpl;
  std::shared_ptr<const cache::CachedPlan> centry;
  std::vector<double> corrections;
  if (pcache != nullptr) {
    tmpl = cache::CanonicalizeTemplate(query, bgp, state_->gs.rdf_type_id);
    if (tmpl.cacheable) {
      centry = pcache->Peek(tmpl.key);
      std::vector<double> canon =
          pcache->feedback().Factors(tmpl.hash, bgp.patterns.size());
      bool any = false;
      for (double f : canon) any = any || f != 1.0;
      if (any) {
        corrections.resize(bgp.patterns.size(), 1.0);
        for (size_t i = 0; i < bgp.patterns.size(); ++i) {
          corrections[i] = canon[tmpl.instance_to_canon[i]];
        }
      }
    }
  }
  ASSIGN_OR_RETURN(opt::Plan plan,
                   PlanQuery(bgp, nullptr, &inferred_anchors,
                             corrections.empty() ? nullptr : &corrections));
  ASSIGN_OR_RETURN(phys::PhysicalPlan pplan, PlanPhysicalFor(bgp, plan));

  std::string out = "plan (" + plan.provider + " optimizer, query shape: " +
                    sparql::QueryShapeName(sparql::ClassifyShape(bgp)) + ")\n";
  if (pcache != nullptr) {
    if (!tmpl.cacheable) {
      out += "plan cache: bypass (" + tmpl.bypass_reason + ")\n";
    } else if (centry != nullptr) {
      out += "plan: cached (" + centry->short_id + ")\n";
    } else {
      out += "plan: not cached (template " + tmpl.ShortId() + ")\n";
    }
  }
  if (!corrections.empty()) {
    out += "est: corrected (feedback factors:";
    char buf[48];
    for (size_t i = 0; i < corrections.size(); ++i) {
      if (corrections[i] == 1.0) continue;
      std::snprintf(buf, sizeof(buf), " tp%zu x%.3g", i, corrections[i]);
      out += buf;
    }
    out += ")\n";
  }
  if (!pplan.steps.empty()) {
    out += "join mode: " + std::string(phys::JoinModeName(pplan.mode)) +
           " -> " + pplan.Summary() + "\n";
  }
  if (state_->options.static_check) {
    out += "static check: " + std::string(analysis::SatisfiabilityName(
                                  check.verdict));
    if (check.provably_empty()) {
      out += " (" + check.rule + "; the query returns zero rows without "
             "executing this plan)";
    } else if (!check.inferred.empty()) {
      out += " (" + std::to_string(check.inferred.size()) +
             " inferred class anchor(s) feed the estimates below)";
    }
    out += "\n";
  }
  for (size_t step = 0; step < plan.order.size(); ++step) {
    uint32_t tp = plan.order[step];
    out += "  " + std::to_string(step + 1) + ". " +
           query.patterns[tp].ToString();
    if (!plan.tp_estimates.empty()) {
      out += "   [tp card ~" +
             WithCommas(static_cast<uint64_t>(plan.tp_estimates[tp].card)) +
             ", step est ~" +
             WithCommas(static_cast<uint64_t>(plan.step_estimates[step])) + "]";
    }
    out += "\n";
    if (step < pplan.steps.size()) {
      const phys::PhysicalStep& ps = pplan.steps[step];
      out += "       op: " + std::string(phys::OpName(ps.op));
      if (ps.op == phys::OpKind::kHash) {
        out += std::string("(build=") + (ps.build_right ? "right" : "left") +
               ")";
      } else if (ps.op == phys::OpKind::kMerge && !ps.left_presorted) {
        out += "(sort-left)";
      }
      if (step > 0 && ps.join_pos >= 0) {
        out += "  [build ~" +
               WithCommas(static_cast<uint64_t>(ps.est_left)) + ", probe ~" +
               WithCommas(static_cast<uint64_t>(ps.est_right)) + "]";
      }
      if (!ps.rationale.empty()) out += "; " + ps.rationale;
      out += "\n";
    }
  }
  if (!query.filters.empty()) {
    out += "  + " + std::to_string(query.filters.size()) +
           " filter(s), applied at the earliest step where bound\n";
  }
  if (plan.total_cost > 0) {
    out += "estimated cost: " +
           WithCommas(static_cast<uint64_t>(plan.total_cost)) + "\n";
  }
  analysis::Diagnostics lint =
      analysis::QueryLint(state_->gs, state_->graph.dict()).Lint(query, bgp);
  if (!lint.empty()) out += analysis::ToText(lint);
  if (!check.diagnostics.empty()) out += analysis::ToText(check.diagnostics);
  return out;
}

Result<AnalyzeResult> QueryEngine::ExplainAnalyze(std::string_view sparql) const {
  static obs::Counter* analyzes =
      obs::MetricsRegistry::Global().GetCounter("engine.explain_analyze");
  AnalyzeResult out;
  obs::QueryTrace& trace = out.trace;
  trace.query = std::string(sparql);

  Timer total;
  Timer phase;
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  trace.AddPhase("parse", phase.ElapsedMs());
  phase.Reset();

  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  trace.AddPhase("encode", phase.ElapsedMs());
  phase.Reset();

  // EXPLAIN ANALYZE executes in full even for provably-empty verdicts — the
  // profiling run doubles as a live soundness check of the static analyzer.
  analysis::ShapeCheckResult check;
  std::unordered_map<sparql::VarId, rdf::TermId> inferred_anchors;
  if (state_->options.static_check) {
    check = Checker().Check(query, bgp);
    trace.static_verdict = analysis::SatisfiabilityName(check.verdict);
    if (state_->options.infer_constraints) {
      inferred_anchors = check.InferredAnchors(state_->gs);
    }
    trace.AddPhase("static-check", phase.ElapsedMs());
    phase.Reset();
  }

  // Apply any feedback corrections in force for this template so the
  // profiled plan matches what Execute would run (no cache lookup/insert:
  // the profiling run always plans fresh).
  std::vector<double> corrections;
  if (state_->plan_cache != nullptr) {
    cache::CanonicalTemplate tmpl =
        cache::CanonicalizeTemplate(query, bgp, state_->gs.rdf_type_id);
    if (tmpl.cacheable) {
      std::vector<double> canon = state_->plan_cache->feedback().Factors(
          tmpl.hash, bgp.patterns.size());
      bool any = false;
      for (double f : canon) any = any || f != 1.0;
      if (any) {
        corrections.resize(bgp.patterns.size(), 1.0);
        for (size_t i = 0; i < bgp.patterns.size(); ++i) {
          corrections[i] = canon[tmpl.instance_to_canon[i]];
        }
        trace.est_corrected = true;
      }
    }
  }
  ASSIGN_OR_RETURN(opt::Plan plan,
                   PlanQuery(bgp, &trace.planner, &inferred_anchors,
                             corrections.empty() ? nullptr : &corrections));
  ASSIGN_OR_RETURN(phys::PhysicalPlan pplan, PlanPhysicalFor(bgp, plan));
  // The profiling run is full (no early termination), but an options-level
  // LIMIT still needs the streaming executor's pushdown.
  if (state_->options.exec.limit > 0 && pplan.Materializes()) {
    phys::ForceInlj(&pplan, "pipelined: LIMIT early termination");
  }
  trace.AddPhase("plan", phase.ElapsedMs());
  phase.Reset();
  trace.optimizer = plan.provider;
  trace.query_shape = sparql::QueryShapeName(sparql::ClassifyShape(bgp));
  trace.est_total_cost = plan.total_cost;

  // Per-pattern estimate provenance (which statistics source / Table-1
  // formula produced each TP estimate), for the step annotations.
  std::vector<card::EstimateDetail> details;
  if (state_->estimator != nullptr) {
    details = state_->estimator->EstimateAllDetailed(bgp, &inferred_anchors);
  }
  trace.AddPhase("estimate", phase.ElapsedMs());
  phase.Reset();

  // Execute on the profiling executor: true per-step cardinalities (the
  // paper's TZ Card ground truth) plus probe/scan counters. A local
  // resource tracker feeds the trace's resources block (EXPLAIN ANALYZE
  // always reports resource totals, registry or not).
  obs::ResourceTracker analyze_tracker;
  exec::ExecOptions eopts = state_->options.exec;
  eopts.trace = &trace.exec;
  eopts.resources = &analyze_tracker;
  exec::ExecResult run;
  if (pplan.Materializes()) {
    ASSIGN_OR_RETURN(
        run, phys::ExecuteBgpPhysical(state_->graph, bgp, pplan, eopts));
  } else {
    ASSIGN_OR_RETURN(
        run, exec::ExecuteBgp(state_->graph, bgp, plan.order, eopts));
  }
  trace.AddPhase("execute", phase.ElapsedMs());
  trace.num_results = run.num_results;
  trace.timed_out = run.timed_out;
  trace.cancelled = run.cancelled;
  trace.resources = analyze_tracker.Snapshot();
  trace.has_resources = true;
  FillStepTraces(query, bgp, plan, &pplan, details, run.step_cards, &trace,
                 /*record=*/!run.timed_out);
  trace.total_ms = total.ElapsedMs();

  // Live soundness cross-check: a provably-empty verdict that observed any
  // result is an analyzer bug (counted, never silently ignored — and
  // captured as a flight-recorder bundle when the recorder is active).
  if (check.provably_empty() && run.num_results > 0) {
    static obs::Counter* violations =
        obs::MetricsRegistry::Global().GetCounter("static_check.violations");
    violations->Add();
    obs::EventLog& log = obs::EventLog::Global();
    if (log.active()) {
      log.Emit(obs::Event("static_check.violation")
                   .Str("rule", check.rule)
                   .Uint("results", run.num_results));
    }
    if (state_->flight != nullptr) {
      state_->flight->Record(
          "static-violation",
          BuildFlightBundle("static-violation", sparql, "ok", plan, pplan,
                            trace.total_ms, run.num_results, &trace,
                            &trace.resources, /*cache_template=*/"",
                            state_->plan_cache.get(), /*request_id=*/0,
                            /*batch_id=*/0, /*slot=*/0));
    }
  }

  analyzes->Add();
  out.text = trace.ToTable();
  // Lint and checker findings ride along so .analyze shows why a query was
  // empty or needed a Cartesian product.
  analysis::Diagnostics lint =
      analysis::QueryLint(state_->gs, state_->graph.dict()).Lint(query, bgp);
  if (!lint.empty()) out.text += analysis::ToText(lint);
  if (!check.diagnostics.empty()) {
    out.text += analysis::ToText(check.diagnostics);
  }
  out.json = trace.ToJson();
  return out;
}

}  // namespace shapestats::engine
