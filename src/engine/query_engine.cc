#include "engine/query_engine.h"

#include <limits>
#include <numeric>

#include "analysis/plan_verify.h"
#include "analysis/query_lint.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "opt/join_order.h"
#include "rdf/ntriples.h"
#include "shacl/generator.h"
#include "sparql/parser.h"
#include "stats/annotator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shapestats::engine {

const char* OptimizerName(EngineOptions::Optimizer opt) {
  switch (opt) {
    case EngineOptions::Optimizer::kShapeStats: return "shape-stats";
    case EngineOptions::Optimizer::kGlobalStats: return "global-stats";
    case EngineOptions::Optimizer::kTextual: return "textual";
  }
  return "?";
}

Result<QueryEngine> QueryEngine::Open(rdf::Graph graph, EngineOptions options) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before Open");
  }
  QueryEngine engine;
  engine.state_ = std::make_unique<State>();
  State& st = *engine.state_;
  st.options = options;
  st.graph = std::move(graph);
  util::ThreadPool* pool = options.pool;
  Timer phase;
  st.gs = stats::GlobalStats::Compute(st.graph, pool);
  obs::MetricsRegistry::Global().Observe("engine.preprocess.global_stats_ms",
                                         phase.ElapsedMs());

  switch (options.optimizer) {
    case EngineOptions::Optimizer::kShapeStats: {
      auto shapes = shacl::GenerateShapes(st.graph);
      // Data without rdf:type triples cannot anchor shapes; degrade to
      // global statistics rather than failing.
      if (shapes.ok()) {
        st.shapes = std::move(shapes).value();
        phase.Reset();
        RETURN_NOT_OK(stats::AnnotateShapes(st.graph, &st.shapes, pool).status());
        obs::MetricsRegistry::Global().Observe("engine.preprocess.annotate_ms",
                                               phase.ElapsedMs());
        st.estimator = std::make_unique<card::CardinalityEstimator>(
            st.gs, &st.shapes, st.graph.dict(), card::StatsMode::kShape);
      } else {
        st.estimator = std::make_unique<card::CardinalityEstimator>(
            st.gs, nullptr, st.graph.dict(), card::StatsMode::kGlobal);
      }
      break;
    }
    case EngineOptions::Optimizer::kGlobalStats:
      st.estimator = std::make_unique<card::CardinalityEstimator>(
          st.gs, nullptr, st.graph.dict(), card::StatsMode::kGlobal);
      break;
    case EngineOptions::Optimizer::kTextual:
      break;
  }
  obs::PublishSharedPoolMetrics();
  return engine;
}

Result<QueryEngine> QueryEngine::FromNTriplesFile(const std::string& path,
                                                  EngineOptions options) {
  rdf::Graph graph;
  RETURN_NOT_OK(rdf::LoadNTriplesFile(path, &graph));
  Timer phase;
  graph.Finalize(options.pool);
  obs::MetricsRegistry::Global().Observe("engine.preprocess.finalize_ms",
                                         phase.ElapsedMs());
  return Open(std::move(graph), options);
}

Result<opt::Plan> QueryEngine::PlanQuery(const sparql::EncodedBgp& bgp,
                                         obs::PlannerTrace* trace) const {
  opt::Plan plan;
  if (state_->estimator == nullptr) {
    plan.provider = "textual";
    plan.order.resize(bgp.patterns.size());
    std::iota(plan.order.begin(), plan.order.end(), 0);
    plan.step_estimates.assign(bgp.patterns.size(), 0);
    // Textual order executes as written; record whether that order forces
    // Cartesian steps so the plan verifier judges it by the same contract
    // as optimized plans.
    for (size_t k = 1; k < plan.order.size() && !plan.has_cartesian; ++k) {
      bool joins = false;
      for (size_t j = 0; j < k && !joins; ++j) {
        joins = sparql::Joinable(bgp.patterns[plan.order[j]],
                                 bgp.patterns[plan.order[k]]);
      }
      plan.has_cartesian = !joins;
    }
  } else {
    plan = opt::PlanJoinOrder(bgp, *state_->estimator, trace);
  }
  if (state_->options.verify_plans) {
    analysis::Diagnostics diags = analysis::PlanVerifier().Verify(plan, bgp);
    if (analysis::HasErrors(diags)) {
      return Status::Internal("plan failed verification:\n" +
                              analysis::ToText(diags));
    }
  }
  return plan;
}

Result<analysis::Diagnostics> QueryEngine::Lint(std::string_view sparql) const {
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  return analysis::QueryLint(state_->gs, state_->graph.dict()).Lint(bgp);
}

Result<QueryResult> QueryEngine::Execute(std::string_view sparql,
                                         obs::QueryTrace* trace) const {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("engine.queries");
  static obs::Histogram* query_ms =
      obs::MetricsRegistry::Global().GetHistogram("engine.query_ms");
  Timer timer;
  Timer phase;
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  if (trace != nullptr) {
    trace->query = std::string(sparql);
    trace->AddPhase("parse", phase.ElapsedMs());
    phase.Reset();
  }
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  if (trace != nullptr) {
    trace->AddPhase("encode", phase.ElapsedMs());
    phase.Reset();
  }
  QueryResult result;
  result.shape = sparql::ClassifyShape(bgp);
  ASSIGN_OR_RETURN(result.plan,
                   PlanQuery(bgp, trace != nullptr ? &trace->planner : nullptr));
  result.plan_ms = timer.ElapsedMs();
  exec::ExecOptions eopts = state_->options.exec;
  if (trace != nullptr) {
    trace->AddPhase("plan", phase.ElapsedMs());
    phase.Reset();
    trace->optimizer = result.plan.provider;
    trace->query_shape = sparql::QueryShapeName(result.shape);
    trace->est_total_cost = result.plan.total_cost;
    eopts.trace = &trace->exec;
  }

  auto finish = [&](uint64_t num_results, bool timed_out) {
    result.total_ms = timer.ElapsedMs();
    queries->Add();
    query_ms->Observe(result.total_ms);
    if (trace != nullptr) {
      trace->AddPhase("execute", phase.ElapsedMs());
      trace->num_results = num_results;
      trace->timed_out = timed_out;
      trace->total_ms = result.total_ms;
    }
  };

  if (query.is_ask) {
    // One solution suffices.
    sparql::ParsedQuery probe = query;
    probe.limit = 1;
    ASSIGN_OR_RETURN(exec::ResultTable table,
                     exec::ExecuteSelect(state_->graph, probe, bgp,
                                         result.plan.order, eopts));
    result.ask = !table.rows.empty();
    finish(table.rows.size(), table.timed_out);
    return result;
  }
  if (query.count_aggregate) {
    // COUNT(*) counts solutions (bag semantics): run the BGP + filters and
    // read the match counter.
    sparql::ParsedQuery counting = query;
    counting.count_aggregate = false;
    counting.select_all = true;
    counting.projection.clear();
    ASSIGN_OR_RETURN(exec::ResultTable table,
                     exec::ExecuteSelect(state_->graph, counting, bgp,
                                         result.plan.order, eopts));
    result.count = table.bgp_matches;
    finish(table.bgp_matches, table.timed_out);
    return result;
  }

  ASSIGN_OR_RETURN(result.table,
                   exec::ExecuteSelect(state_->graph, query, bgp,
                                       result.plan.order, eopts));
  finish(result.table.rows.size(), result.table.timed_out);
  return result;
}

BatchResult QueryEngine::ExecuteBatch(const std::vector<std::string>& queries,
                                      const BatchOptions& options) const {
  static obs::Counter* batches =
      obs::MetricsRegistry::Global().GetCounter("engine.batches");
  static obs::Counter* batch_queries =
      obs::MetricsRegistry::Global().GetCounter("engine.batch_queries");
  static obs::Histogram* batch_ms =
      obs::MetricsRegistry::Global().GetHistogram("engine.batch_ms");
  util::ThreadPool& pool =
      options.pool != nullptr
          ? *options.pool
          : (state_->options.pool != nullptr ? *state_->options.pool
                                             : util::ThreadPool::Shared());
  BatchResult batch;
  batch.results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.results.emplace_back(Status::Internal("query not executed"));
  }
  if (options.collect_traces) batch.traces.resize(queries.size());

  Timer timer;
  // Queries only read the finalized graph and the immutable statistics (the
  // estimator's shape cache is internally synchronized), so they fan out
  // directly; every query writes only its own slot, which makes the batch
  // output independent of scheduling.
  pool.ParallelFor(0, queries.size(), [&](size_t i) {
    obs::QueryTrace* trace =
        options.collect_traces ? &batch.traces[i] : nullptr;
    batch.results[i] = Execute(queries[i], trace);
  });
  batch.wall_ms = timer.ElapsedMs();
  for (const Result<QueryResult>& r : batch.results) {
    if (r.ok()) batch.sum_query_ms += r->total_ms;
  }
  batches->Add();
  batch_queries->Add(queries.size());
  batch_ms->Observe(batch.wall_ms);
  obs::PublishSharedPoolMetrics();
  return batch;
}

Result<std::string> QueryEngine::Explain(std::string_view sparql) const {
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  ASSIGN_OR_RETURN(opt::Plan plan, PlanQuery(bgp));

  std::string out = "plan (" + plan.provider + " optimizer, query shape: " +
                    sparql::QueryShapeName(sparql::ClassifyShape(bgp)) + ")\n";
  for (size_t step = 0; step < plan.order.size(); ++step) {
    uint32_t tp = plan.order[step];
    out += "  " + std::to_string(step + 1) + ". " +
           query.patterns[tp].ToString();
    if (!plan.tp_estimates.empty()) {
      out += "   [tp card ~" +
             WithCommas(static_cast<uint64_t>(plan.tp_estimates[tp].card)) +
             ", step est ~" +
             WithCommas(static_cast<uint64_t>(plan.step_estimates[step])) + "]";
    }
    out += "\n";
  }
  if (!query.filters.empty()) {
    out += "  + " + std::to_string(query.filters.size()) +
           " filter(s), applied at the earliest step where bound\n";
  }
  if (plan.total_cost > 0) {
    out += "estimated cost: " +
           WithCommas(static_cast<uint64_t>(plan.total_cost)) + "\n";
  }
  analysis::Diagnostics lint =
      analysis::QueryLint(state_->gs, state_->graph.dict()).Lint(bgp);
  if (!lint.empty()) out += analysis::ToText(lint);
  return out;
}

Result<AnalyzeResult> QueryEngine::ExplainAnalyze(std::string_view sparql) const {
  static obs::Counter* analyzes =
      obs::MetricsRegistry::Global().GetCounter("engine.explain_analyze");
  AnalyzeResult out;
  obs::QueryTrace& trace = out.trace;
  trace.query = std::string(sparql);

  Timer total;
  Timer phase;
  ASSIGN_OR_RETURN(sparql::ParsedQuery query, sparql::ParseQuery(sparql));
  trace.AddPhase("parse", phase.ElapsedMs());
  phase.Reset();

  sparql::EncodedBgp bgp = sparql::EncodeBgp(query, state_->graph.dict());
  trace.AddPhase("encode", phase.ElapsedMs());
  phase.Reset();

  ASSIGN_OR_RETURN(opt::Plan plan, PlanQuery(bgp, &trace.planner));
  trace.AddPhase("plan", phase.ElapsedMs());
  phase.Reset();
  trace.optimizer = plan.provider;
  trace.query_shape = sparql::QueryShapeName(sparql::ClassifyShape(bgp));
  trace.est_total_cost = plan.total_cost;

  // Per-pattern estimate provenance (which statistics source / Table-1
  // formula produced each TP estimate), for the step annotations.
  std::vector<card::EstimateDetail> details;
  if (state_->estimator != nullptr) {
    details = state_->estimator->EstimateAllDetailed(bgp);
  }
  trace.AddPhase("estimate", phase.ElapsedMs());
  phase.Reset();

  // Execute on the profiling executor: true per-step cardinalities (the
  // paper's TZ Card ground truth) plus probe/scan counters.
  exec::ExecOptions eopts = state_->options.exec;
  eopts.trace = &trace.exec;
  ASSIGN_OR_RETURN(exec::ExecResult run,
                   exec::ExecuteBgp(state_->graph, bgp, plan.order, eopts));
  trace.AddPhase("execute", phase.ElapsedMs());
  trace.num_results = run.num_results;
  trace.timed_out = run.timed_out;
  trace.true_total_cost = run.TrueCost();

  for (size_t k = 0; k < plan.order.size(); ++k) {
    const uint32_t tp = plan.order[k];
    obs::StepTrace step;
    step.step = static_cast<uint32_t>(k + 1);
    step.pattern = tp;
    step.pattern_text = query.patterns[tp].ToString();
    if (tp < details.size()) {
      step.source = details[tp].source;
      step.formula = details[tp].formula;
      step.tp_est = details[tp].est.card;
    } else {
      step.source = "textual";
    }
    step.est_card = k < plan.step_estimates.size() ? plan.step_estimates[k] : 0;
    step.true_card = run.step_cards[k];
    step.q_error = state_->estimator != nullptr
                       ? obs::QError(step.est_card, static_cast<double>(step.true_card))
                       : std::numeric_limits<double>::quiet_NaN();
    if (k < trace.exec.step_rows_scanned.size()) {
      step.rows_scanned = trace.exec.step_rows_scanned[k];
      step.index_probes = trace.exec.step_probes[k];
    }
    trace.steps.push_back(std::move(step));
  }

  trace.total_ms = total.ElapsedMs();
  analyzes->Add();
  out.text = trace.ToTable();
  // Lint findings ride along so .analyze shows why a query was empty or
  // needed a Cartesian product.
  analysis::Diagnostics lint =
      analysis::QueryLint(state_->gs, state_->graph.dict()).Lint(bgp);
  if (!lint.empty()) out.text += analysis::ToText(lint);
  out.json = trace.ToJson();
  return out;
}

}  // namespace shapestats::engine
