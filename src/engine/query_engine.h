// QueryEngine: the batteries-included facade over the whole library.
// Owns the graph, builds all statistics artifacts once (global stats,
// SHACL shapes + annotation), and answers SPARQL SELECT queries with
// shape-statistics-optimized plans — the paper's system as a downstream
// user would consume it.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "analysis/diagnostics.h"
#include "analysis/shape_check.h"
#include "cache/plan_cache.h"
#include "card/estimator.h"
#include "exec/select_executor.h"
#include "obs/accuracy_ledger.h"
#include "obs/flight_recorder.h"
#include "obs/query_registry.h"
#include "obs/trace.h"
#include "opt/plan.h"
#include "phys/physical_plan.h"
#include "rdf/graph.h"
#include "shacl/shapes.h"
#include "sparql/query_graph.h"
#include "stats/global_stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shapestats::engine {

struct EngineOptions {
  enum class Optimizer {
    kShapeStats,   // SS: annotated SHACL shapes + global stats (default)
    kGlobalStats,  // GS: extended-VoID statistics only
    kTextual,      // no optimizer: execute patterns in textual order
  };
  Optimizer optimizer = Optimizer::kShapeStats;
  exec::ExecOptions exec;
  /// Run analysis::PlanVerifier on every plan before execution (cheap,
  /// O(n^2) in the BGP size). A violation means a planner/estimator bug;
  /// the query fails with an Internal status and the
  /// analysis.plan_violations counter is bumped.
  bool verify_plans = true;
  /// Thread pool for preprocessing (statistics, shape annotation) and as
  /// the default pool for ExecuteBatch. Null means util::ThreadPool::Shared()
  /// (sized by SHAPESTATS_THREADS). Must outlive the engine.
  util::ThreadPool* pool = nullptr;
  /// Run the shape-aware static checker (analysis::ShapeChecker) before
  /// planning. A provably-empty verdict short-circuits to a zero-row result
  /// without invoking the optimizer or executor (static_check.* counters,
  /// query.static event); degenerate queries the executor would reject are
  /// never short-circuited, so error behavior is unchanged.
  bool static_check = true;
  /// Hand the checker's proven class memberships for untyped subject
  /// variables to the cardinality estimator as extra shape anchors
  /// (tighter SS plans). No effect when static_check is off or the
  /// optimizer has no shape statistics.
  bool infer_constraints = true;
  /// Physical join-operator policy (phys::PlanPhysical). The default kEnv
  /// resolves SHAPESTATS_JOIN (auto | inlj | merge | hash) at plan time;
  /// tests force modes here to stay env-independent. Every mode produces
  /// byte-identical results — only the work profile changes. ASK and LIMIT
  /// queries always run on the streaming INLJ executor (early termination
  /// beats materialization), with the downgrade recorded in the plan.
  phys::JoinMode join_mode = phys::JoinMode::kEnv;
  /// Plan cache over canonicalized BGP templates (src/cache/): repeated
  /// query templates skip static-check + optimize + physical planning, and
  /// ledger-observed estimation errors feed back into future plans for the
  /// same template. kEnv resolves SHAPESTATS_PLAN_CACHE at Open time
  /// (unset / "0" / "off" = disabled, so default behavior is unchanged);
  /// kOn / kOff force it regardless of the environment.
  enum class PlanCacheMode : uint8_t { kEnv, kOn, kOff };
  PlanCacheMode plan_cache = PlanCacheMode::kEnv;
  /// Capacity and feedback-correction knobs for the plan cache (unused
  /// when the cache is disabled).
  cache::PlanCache::Options plan_cache_options;
  /// Live query registry (obs::QueryRegistry::Global()): every Execute /
  /// ExecuteBatch slot registers a record with phase, step progress, and a
  /// per-query ResourceTracker; /debug/queries and the shell's .running
  /// render it, and Cancel(id) requests cooperative cancellation served on
  /// the executors' next work tick. kEnv resolves SHAPESTATS_REGISTRY at
  /// Open time (enabled unless "0"/"off"/"false"/"no"); kOn / kOff force
  /// it. Disabled, queries carry no tracker and pay zero accounting cost
  /// (untraced executions skip even the per-tick publication).
  enum class RegistryMode : uint8_t { kEnv, kOn, kOff };
  RegistryMode registry = RegistryMode::kEnv;
};

const char* OptimizerName(EngineOptions::Optimizer opt);

/// Result of one query: the solution table plus the plan that produced it.
/// ASK queries set `ask`; COUNT(*) queries set `count` (the table is empty
/// in both cases).
struct QueryResult {
  exec::ResultTable table;
  opt::Plan plan;
  /// Operator choices for `plan`'s join order (empty for short-circuited
  /// queries). When no step materializes, execution stayed on the
  /// streaming depth-first executor.
  phys::PhysicalPlan phys;
  sparql::QueryShape shape = sparql::QueryShape::kComplex;
  std::optional<bool> ask;
  std::optional<uint64_t> count;
  double plan_ms = 0;   // parse + optimize
  double total_ms = 0;  // parse + optimize + execute
};

/// Result of ExplainAnalyze: the query is executed once on the profiling
/// executor and the plan is annotated with estimated vs. true cardinality,
/// q-error, and work counters per join step plus per-phase timings.
struct AnalyzeResult {
  obs::QueryTrace trace;
  /// Human-readable rendering (step table + phases + totals).
  std::string text;
  /// Machine-readable trace (same schema as QueryTrace::ToJson).
  std::string json;
};

/// Options for ExecuteBatch.
struct BatchOptions {
  /// Pool the batch fans out on. Null falls back to EngineOptions::pool,
  /// then to util::ThreadPool::Shared(). A 1-thread pool executes the batch
  /// sequentially on the calling thread.
  util::ThreadPool* pool = nullptr;
  /// Collect a per-query obs::QueryTrace (BatchResult::traces, index-aligned
  /// with the input).
  bool collect_traces = false;
  /// When nonzero, stamped as "request_id" on every batch.* event this batch
  /// emits into the obs::EventLog, so serving-plane requests (which carry the
  /// same id on their http.request.* events) are attributable to the engine
  /// work they caused.
  uint64_t request_id = 0;
};

/// Result of one ExecuteBatch call. `results[i]` is the outcome of
/// `queries[i]` — slot order never depends on scheduling, so batch output is
/// deterministic and directly comparable against sequential execution.
struct BatchResult {
  std::vector<Result<QueryResult>> results;
  std::vector<obs::QueryTrace> traces;  // empty unless collect_traces
  /// Process-unique id stamped on every event this batch emits into the
  /// obs::EventLog, so a batch's events can be correlated slot-for-slot
  /// with `results` even when several batches interleave.
  uint64_t batch_id = 0;
  double wall_ms = 0;        // end-to-end batch wall time
  double sum_query_ms = 0;   // sum of per-query times (sequential-equivalent)
};

/// Movable handle; all state lives behind one stable heap allocation so
/// the internal estimator's references survive moves.
class QueryEngine {
 public:
  /// Takes ownership of a finalized graph and runs all preprocessing
  /// (global statistics; shape generation + annotation in kShapeStats mode).
  static Result<QueryEngine> Open(rdf::Graph graph, EngineOptions options = {});

  /// Loads an N-Triples file and opens it.
  static Result<QueryEngine> FromNTriplesFile(const std::string& path,
                                              EngineOptions options = {});

  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;

  /// Parses, plans, and executes a SELECT query. When `trace` is non-null
  /// it is filled with per-phase spans (parse, encode, plan, execute),
  /// planner decision counters, and executor probe/scan counters.
  Result<QueryResult> Execute(std::string_view sparql,
                              obs::QueryTrace* trace = nullptr) const;

  /// Executes a workload of queries concurrently over the shared immutable
  /// graph and statistics. Each query runs exactly as Execute would run it
  /// (same plans, same results); only scheduling differs. Per-query failures
  /// land in their result slot — the batch itself never aborts early.
  BatchResult ExecuteBatch(const std::vector<std::string>& queries,
                           const BatchOptions& options = {}) const;

  /// Parses and plans without executing; returns a human-readable plan
  /// description (pattern order with estimates), followed by any lint
  /// warnings for the query.
  Result<std::string> Explain(std::string_view sparql) const;

  /// Static analysis only: parses and encodes the query and runs
  /// analysis::QueryLint against the dataset's statistics (unknown
  /// predicates/classes, guaranteed-empty patterns, forced Cartesian
  /// products). Does not plan or execute.
  Result<analysis::Diagnostics> Lint(std::string_view sparql) const;

  /// Full static check without planning or executing: query lint (including
  /// the error-severity degenerate-query rules) merged with the
  /// ShapeChecker's satisfiability verdict and inferred constraints. The
  /// serving plane answers 400 from the error findings and annotates
  /// statically-empty queries with the verdict; stats_lint --queries and the
  /// shell's .check expose the same result offline.
  Result<analysis::ShapeCheckResult> StaticCheck(std::string_view sparql) const;

  /// EXPLAIN ANALYZE: plans the query, executes it once on the profiling
  /// executor, and reports per-step estimated vs. true cardinality with
  /// q-error, rows scanned and index probes, plus per-phase timings —
  /// in table and JSON form.
  Result<AnalyzeResult> ExplainAnalyze(std::string_view sparql) const;

  const rdf::Graph& graph() const { return state_->graph; }
  const stats::GlobalStats& global_stats() const { return state_->gs; }
  /// Annotated shapes (empty in kGlobalStats / kTextual modes).
  const shacl::ShapesGraph& shapes() const { return state_->shapes; }
  const EngineOptions& options() const { return state_->options; }

  /// Workload q-error ledger: every traced execution (Execute with a trace,
  /// ExecuteBatch with collect_traces, ExplainAnalyze) of an exact query
  /// (no ASK / LIMIT / timeout truncating the true cardinalities) records
  /// its per-step q-errors here, keyed by optimizer, query shape,
  /// statistics source, and join type. Rendered by the shell's `.accuracy`.
  const obs::AccuracyLedger& accuracy_ledger() const { return state_->ledger; }
  void ResetAccuracyLedger() const { state_->ledger.Reset(); }

  /// The plan cache, or null when disabled (EngineOptions::plan_cache
  /// resolved against SHAPESTATS_PLAN_CACHE at Open time). Internally
  /// synchronized; safe to inspect concurrently with query execution.
  cache::PlanCache* plan_cache() const { return state_->plan_cache.get(); }

  /// The live query registry this engine registers executions into, or
  /// null when disabled (EngineOptions::registry resolved against
  /// SHAPESTATS_REGISTRY at Open time). Internally synchronized.
  obs::QueryRegistry* query_registry() const { return state_->registry; }

  /// The process flight recorder when any anomaly trigger is configured
  /// (SHAPESTATS_FLIGHT_DIR / _SLOW_MS / _QERROR), else null.
  obs::FlightRecorder* flight_recorder() const { return state_->flight; }

 private:
  struct State {
    rdf::Graph graph;
    stats::GlobalStats gs;
    shacl::ShapesGraph shapes;
    std::unique_ptr<card::CardinalityEstimator> estimator;
    EngineOptions options;
    // Mutated from const query paths; AccuracyLedger is internally
    // synchronized, and unique_ptr does not propagate const.
    obs::AccuracyLedger ledger;
    // Null when the plan cache is disabled. Internally synchronized.
    std::unique_ptr<cache::PlanCache> plan_cache;
    // Introspection plane (resolved once at Open): the process query
    // registry when enabled, and the process flight recorder when any
    // anomaly trigger is configured. Both null otherwise.
    obs::QueryRegistry* registry = nullptr;
    obs::FlightRecorder* flight = nullptr;
  };

  /// Caller identity of one execution (serving-plane request id, engine
  /// batch id, slot within the batch), stamped onto the registry record.
  struct ExecContext {
    uint64_t request_id = 0;
    uint64_t batch_id = 0;
    uint32_t slot = 0;
  };

  QueryEngine() = default;

  /// Execute with caller identity for the registry record; Execute and
  /// ExecuteBatch are thin wrappers.
  Result<QueryResult> ExecuteInternal(std::string_view sparql,
                                      obs::QueryTrace* trace,
                                      const ExecContext* ctx) const;

  /// `inferred` optionally carries the static checker's proven class
  /// anchors, merged into the estimator's rdf:type anchors for this query.
  /// `corrections` (per instance pattern, parallel to bgp.patterns)
  /// optionally scales the estimator's cardinalities by feedback-learned
  /// factors (card::CorrectedProvider); the factors are stamped onto the
  /// returned plan's correction_factors.
  Result<opt::Plan> PlanQuery(
      const sparql::EncodedBgp& bgp, obs::PlannerTrace* trace = nullptr,
      const std::unordered_map<sparql::VarId, rdf::TermId>* inferred = nullptr,
      const std::vector<double>* corrections = nullptr) const;

  /// Annotates `plan` with physical operators (EngineOptions::join_mode)
  /// and, when verify_plans is set, validates the result against the
  /// phys.* rule catalog (Internal status on violation — a planner bug).
  Result<phys::PhysicalPlan> PlanPhysicalFor(const sparql::EncodedBgp& bgp,
                                             const opt::Plan& plan) const;

  /// Checker over this engine's statistics (shapes only when present).
  analysis::ShapeChecker Checker() const;

  /// Builds trace->steps from the plan, the per-pattern estimate details,
  /// and the executor's measured per-step cardinalities (also classifying
  /// each step's join type), then records the steps into the ledger when
  /// `record` is set and emits per-step events.
  /// `pplan` (may be null for short-circuited paths) stamps each step's
  /// physical operator and build/probe estimates onto the trace.
  void FillStepTraces(const sparql::ParsedQuery& query,
                      const sparql::EncodedBgp& bgp, const opt::Plan& plan,
                      const phys::PhysicalPlan* pplan,
                      const std::vector<card::EstimateDetail>& details,
                      const std::vector<uint64_t>& true_cards,
                      obs::QueryTrace* trace, bool record) const;

  std::unique_ptr<State> state_;
};

}  // namespace shapestats::engine
